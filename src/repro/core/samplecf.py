"""The SampleCF estimator — Figure 2 of the paper.

::

    Algorithm SampleCF (T, f, S, C)
      // Table T, sampling fraction f, index columns S, compression C
      1. T' = uniform random sample of f*n rows from T
      2. Build index I'(S) on T'
      3. Compress index I' using C
      4. Return CF for index I'

Three execution paths share the same estimator object:

* :meth:`SampleCF.estimate_table` — the literal algorithm against the
  storage engine: draw rows, bulk-load a real index on them, compress
  its leaf pages, report the sample's CF. Supports every sampler,
  including block sampling, and every registered algorithm.
* :meth:`SampleCF.estimate_index` — sample the leaves of an *existing*
  index instead of the base table (Section II-C notes this cheaper
  variant).
* :meth:`SampleCF.estimate_histogram` — the closed-form fast path over a
  :class:`~repro.core.cf_models.ColumnHistogram`; distributionally
  identical to the storage path for model-able algorithms and fast
  enough for the paper's 100M-row Example 1.

``SampleCF`` is a thin single-request facade: the table and histogram
paths build an :class:`~repro.engine.requests.EstimationRequest` and run
it on the shared :class:`~repro.engine.engine.EstimationEngine`, so
repeated calls over the same table reuse materialized samples and built
sample indexes. Results are bit-identical to running the algorithm
inline for a fixed seed.

Ground truth comes from :func:`true_cf_table` / :func:`true_cf_histogram`
(compress everything, no sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE
from repro.errors import EstimationError, SamplingError
from repro.sampling.base import RowSampler, rows_for_fraction
from repro.sampling.block import BlockSampler
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.storage.index import Accounting, Index, IndexKind
from repro.storage.table import Table
from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm
from repro.core.cf_models import ColumnHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import EstimationEngine


@dataclass(frozen=True)
class SampleCFEstimate:
    """Outcome of one SampleCF run."""

    #: The estimate CF' — the compression fraction observed on the sample.
    estimate: float
    #: Rows actually sampled (``r``; random for Bernoulli/block designs).
    sample_rows: int
    #: The requested sampling fraction ``f``.
    sampling_fraction: float
    #: Compression algorithm name (``C`` in the paper's pseudocode).
    algorithm: str
    #: Size accounting used (``payload`` reproduces the paper's model).
    accounting: str
    #: Which execution path produced the estimate.
    path: str
    #: Uncompressed bytes of the sampled index (CF' denominator).
    uncompressed_sample_bytes: int
    #: Compressed bytes of the sampled index (CF' numerator).
    compressed_sample_bytes: int
    #: Distinct key values observed in the sample (``d'``), if tracked.
    sample_distinct: int | None = None
    #: Extra path-specific diagnostics.
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Zero is a legitimate outcome — a perfectly compressible
        # sample (e.g. RLE over a constant column under payload
        # accounting) compresses to zero bytes. Only a negative CF is
        # impossible.
        if self.estimate < 0:
            raise EstimationError(
                f"SampleCF produced a negative estimate {self.estimate}")


class SampleCF:
    """The sampling-based compression-fraction estimator.

    Parameters
    ----------
    algorithm:
        A :class:`CompressionAlgorithm` instance or registered name.
    sampler:
        Sampling design; defaults to the paper's uniform-with-replacement
        tuple sampler. :class:`BlockSampler` is accepted on the table
        path only (block sampling has no layout-free histogram model).
    accounting:
        ``payload`` (paper model, default) or ``physical``.
    repack:
        Whether compressed pages are repacked to capacity (``physical``
        realism knob; see :meth:`Index.compress`).
    page_size / fill_factor:
        Layout of the index built on the sample.
    engine:
        The :class:`~repro.engine.engine.EstimationEngine` to run on;
        defaults to the shared process-wide engine, whose sample cache
        makes repeated estimates over one table cheap.
    """

    def __init__(self, algorithm: CompressionAlgorithm | str,
                 sampler: RowSampler | BlockSampler | None = None,
                 accounting: Accounting = "payload",
                 repack: bool = False,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 fill_factor: float = 1.0,
                 engine: "EstimationEngine | None" = None) -> None:
        if isinstance(algorithm, str):
            algorithm = get_algorithm(algorithm)
        self.algorithm = algorithm
        self.sampler = sampler if sampler is not None \
            else WithReplacementSampler()
        self.accounting: Accounting = accounting
        self.repack = repack
        self.page_size = page_size
        self.fill_factor = fill_factor
        self._engine = engine

    def _engine_for_call(self):
        """The engine serving this facade (shared default unless set)."""
        if self._engine is not None:
            return self._engine
        from repro.engine.engine import default_engine  # lazy: cycle guard

        return default_engine()

    @staticmethod
    def _resolve_seed(seed: SeedLike) -> SeedLike:
        """Pin ``None`` to fresh entropy so repeated calls stay random.

        The engine derives seeds deterministically from request content;
        a facade call with ``seed=None`` must instead behave like the
        historical code path — independent randomness on every call. A
        fresh Generator (not an int) takes the engine's opaque-seed
        path, which skips the shared sample cache: a never-reusable
        random draw should not evict reusable fixed-seed samples or pin
        its rows in memory after the call returns.
        """
        if seed is None:
            # repro-lint: ignore[RPL001] -- the facade's documented
            # None-seed behaviour: independent randomness per call, via
            # the engine's opaque-seed path (never cached, never
            # stored), matching the historical pre-engine code path.
            return np.random.default_rng()
        return seed

    # ------------------------------------------------------------------
    # Storage path (the literal Figure 2 algorithm)
    # ------------------------------------------------------------------
    def estimate_table(self, table: Table, fraction: float,
                       key_columns: Sequence[str],
                       kind: IndexKind = IndexKind.CLUSTERED,
                       seed: SeedLike = None) -> SampleCFEstimate:
        """Run SampleCF against a real table (one engine request)."""
        from repro.engine.requests import EstimationRequest  # cycle guard

        if table.num_rows == 0:
            raise EstimationError("cannot estimate over an empty table")
        rows_for_fraction(table.num_rows, fraction)  # validate f early
        request = EstimationRequest(
            table=table, columns=tuple(key_columns),
            algorithm=self.algorithm, fraction=fraction, trials=1,
            seed=self._resolve_seed(seed), kind=kind,
            sampler=self.sampler, accounting=self.accounting,
            repack=self.repack, page_size=self.page_size,
            fill_factor=self.fill_factor)
        return self._engine_for_call().estimate(request).estimates[0]

    def estimate_index(self, index: Index, fraction: float,
                       seed: SeedLike = None) -> SampleCFEstimate:
        """Run SampleCF by sampling an existing index's leaf entries."""
        if index.num_entries == 0:
            raise EstimationError("cannot estimate over an empty index")
        if isinstance(self.sampler, BlockSampler):
            return self._estimate_index_blocks(index, fraction, seed)
        rng = make_rng(seed)
        r = rows_for_fraction(index.num_entries, fraction)
        positions = self.sampler.sample_positions(index.num_entries, r,
                                                  rng)
        # One streaming pass over the leaves; never materializes the
        # full leaf-record list the way the pre-engine code did.
        sampled = index.leaf_records_at([int(p) for p in positions])
        return self._finish_index_sample(index, sampled, fraction,
                                         path="index")

    def _estimate_index_blocks(self, index: Index, fraction: float,
                               seed: SeedLike) -> SampleCFEstimate:
        rng = make_rng(seed)
        pages = list(index.leaf_pages())
        r = rows_for_fraction(index.num_entries, fraction)
        block = self.sampler.sample_records(pages, r, rng)
        # Block-sampling diagnostics go in through the constructor:
        # SampleCFEstimate is frozen, and mutating details after
        # construction would bypass its __post_init__-time invariants.
        return self._finish_index_sample(
            index, list(block.records), fraction, path="index_block",
            extra_details={"pages_sampled": len(block.page_ids),
                           "pages_available": block.pages_available})

    def _finish_index_sample(self, index: Index, sampled: list[bytes],
                             fraction: float, path: str,
                             extra_details: dict | None = None,
                             ) -> SampleCFEstimate:
        sample_index = index.clone_with_records(sampled)
        result = sample_index.estimate_compression(
            self.algorithm, accounting=self.accounting,
            repack_pages=self.repack)
        distinct = len({index.leaf_record_key(record)
                        for record in sampled})
        details = {"pages_before": result.pages_before,
                   "pages_after": result.pages_after}
        if extra_details:
            details.update(extra_details)
        return SampleCFEstimate(
            estimate=result.compression_fraction,
            sample_rows=len(sampled),
            sampling_fraction=fraction,
            algorithm=self.algorithm.name,
            accounting=self.accounting,
            path=path,
            uncompressed_sample_bytes=result.uncompressed_bytes,
            compressed_sample_bytes=result.compressed_bytes,
            sample_distinct=distinct,
            details=details)

    # ------------------------------------------------------------------
    # Histogram fast path
    # ------------------------------------------------------------------
    def estimate_histogram(self, histogram: ColumnHistogram,
                           fraction: float, seed: SeedLike = None,
                           record_bytes: int | None = None,
                           ) -> SampleCFEstimate:
        """Run SampleCF in closed form over a value histogram.

        Distributionally identical to the storage path under ``payload``
        accounting (integration tests verify this), and the only
        practical path at the paper's Example 1 scale.
        """
        from repro.engine.requests import EstimationRequest  # cycle guard

        if isinstance(self.sampler, BlockSampler):
            raise SamplingError(
                "block sampling depends on the physical layout; use "
                "estimate_table/estimate_index")
        if self.accounting != "payload":
            raise EstimationError(
                "the histogram path models payload accounting only")
        rows_for_fraction(histogram.n, fraction)  # validate f early
        request = EstimationRequest(
            histogram=histogram, algorithm=self.algorithm,
            fraction=fraction, trials=1, seed=self._resolve_seed(seed),
            sampler=self.sampler, accounting=self.accounting,
            page_size=self.page_size, fill_factor=self.fill_factor,
            record_bytes=record_bytes)
        return self._engine_for_call().estimate(request).estimates[0]


# ----------------------------------------------------------------------
# Figure 2 convenience wrapper and ground truth
# ----------------------------------------------------------------------
def sample_cf(table: Table, fraction: float, columns: Sequence[str],
              algorithm: CompressionAlgorithm | str,
              kind: IndexKind = IndexKind.CLUSTERED,
              seed: SeedLike = None) -> float:
    """The paper's ``SampleCF(T, f, S, C)`` as a one-call function."""
    estimator = SampleCF(algorithm)
    return estimator.estimate_table(
        table, fraction, columns, kind=kind, seed=seed).estimate


def true_cf_table(table: Table, key_columns: Sequence[str],
                  algorithm: CompressionAlgorithm | str,
                  kind: IndexKind = IndexKind.CLUSTERED,
                  accounting: Accounting = "payload",
                  repack: bool = False,
                  page_size: int = DEFAULT_PAGE_SIZE,
                  fill_factor: float = 1.0) -> float:
    """Exact CF: build the full index and size-compress all of it.

    Uses :meth:`~repro.storage.index.Index.estimate_compression` —
    bit-identical to :meth:`~repro.storage.index.Index.compress` but
    on the vectorized size kernels, so no compressed blobs are built
    just to be thrown away.
    """
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    index = Index("truth", table.schema, key_columns, kind=kind,
                  page_size=page_size, fill_factor=fill_factor)
    pairs = [(row, table.rid_at(position))
             for position, row in enumerate(table.rows())]
    index.build(pairs)
    result = index.estimate_compression(algorithm, accounting=accounting,
                                        repack_pages=repack)
    return result.compression_fraction


def true_cf_histogram(histogram: ColumnHistogram,
                      algorithm: CompressionAlgorithm | str,
                      page_size: int = DEFAULT_PAGE_SIZE,
                      record_bytes: int | None = None,
                      fill_factor: float = 1.0) -> float:
    """Exact CF in closed form over the full histogram."""
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    return algorithm.cf_from_histogram(
        histogram, page_size=page_size, record_bytes=record_bytes,
        fill_factor=fill_factor)
