"""Distinct-value estimators (the hardness connection, paper ref [1]).

Section III-B shows that estimating the dictionary-compression fraction
reduces to estimating the number of distinct values ``d``, which Charikar
et al. (PODS 2000) proved cannot be done from a uniform sample without a
ratio error of ``Omega(sqrt(n/r))`` in the worst case. SampleCF
side-steps the issue by *implicitly* using the plug-in ``d_hat = d'``
scaled by the sample size (``d'/r`` against ``d/n``).

This module implements the classical estimators from that literature so
the `abl-distinct` ablation can ask: *would a better distinct-value
estimator beat SampleCF's implicit one?*

All estimators consume the sample's frequency-of-frequencies ``f_j``
(how many distinct values occur exactly ``j`` times in the sample),
``r`` (sample rows) and ``n`` (table rows).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

from repro.errors import EstimationError
from repro.core.cf_models import ColumnHistogram


def _validate_inputs(freqs: Mapping[int, int], r: int, n: int) -> None:
    if r <= 0 or n <= 0:
        raise EstimationError(f"need positive r and n, got r={r}, n={n}")
    if r > n:
        raise EstimationError(f"sample of {r} exceeds population {n}")
    if not freqs:
        raise EstimationError("empty frequency-of-frequencies")
    total = sum(j * count for j, count in freqs.items())
    if total != r:
        raise EstimationError(
            f"frequency-of-frequencies sums to {total}, expected r={r}")
    if any(j <= 0 or count < 0 for j, count in freqs.items()):
        raise EstimationError("invalid frequency-of-frequencies entries")


class DistinctValueEstimator(ABC):
    """Estimates the table's distinct count ``d`` from a sample."""

    name: str = "abstract"

    @abstractmethod
    def estimate(self, freqs: Mapping[int, int], r: int, n: int) -> float:
        """Estimate ``d`` given sample frequency-of-frequencies."""

    def estimate_from_histogram(self, sample: ColumnHistogram,
                                n: int) -> float:
        """Convenience: consume a sampled histogram directly."""
        return self.estimate(sample.frequency_of_frequencies(),
                             sample.n, n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SampleDistinct(DistinctValueEstimator):
    """SampleCF's implicit estimator: ``d_hat = d' * n / r``.

    Plugging this into ``d_hat/n + p/k`` recovers exactly the SampleCF
    dictionary estimate ``d'/r + p/k``, so this is the baseline the
    other estimators are compared against.
    """

    name = "scale_up"

    def estimate(self, freqs: Mapping[int, int], r: int, n: int) -> float:
        _validate_inputs(freqs, r, n)
        d_sample = sum(freqs.values())
        return d_sample * n / r


class Chao84(DistinctValueEstimator):
    """Chao's 1984 lower-bound estimator: ``d' + f1^2 / (2 f2)``.

    With no doubletons (``f2 = 0``) the bias-corrected form
    ``d' + f1 (f1 - 1) / 2`` is used.
    """

    name = "chao84"

    def estimate(self, freqs: Mapping[int, int], r: int, n: int) -> float:
        _validate_inputs(freqs, r, n)
        d_sample = sum(freqs.values())
        f1 = freqs.get(1, 0)
        f2 = freqs.get(2, 0)
        if f2 > 0:
            estimate = d_sample + (f1 * f1) / (2.0 * f2)
        else:
            estimate = d_sample + f1 * (f1 - 1) / 2.0
        return min(estimate, float(n))


class GEE(DistinctValueEstimator):
    """Guaranteed-Error Estimator of Charikar et al. (PODS 2000).

    ``d_hat = sqrt(n/r) * f1 + sum_{j >= 2} f_j`` — achieves the optimal
    worst-case ratio error ``O(sqrt(n/r))`` matching their lower bound.
    """

    name = "gee"

    def estimate(self, freqs: Mapping[int, int], r: int, n: int) -> float:
        _validate_inputs(freqs, r, n)
        f1 = freqs.get(1, 0)
        higher = sum(count for j, count in freqs.items() if j >= 2)
        estimate = math.sqrt(n / r) * f1 + higher
        return min(max(estimate, float(sum(freqs.values()))), float(n))


class Shlosser(DistinctValueEstimator):
    """Shlosser's estimator (good under skew when ``f`` is small).

    ``d_hat = d' + f1 * sum_i (1-q)^i f_i / sum_i i q (1-q)^{i-1} f_i``
    with ``q = r/n``.
    """

    name = "shlosser"

    def estimate(self, freqs: Mapping[int, int], r: int, n: int) -> float:
        _validate_inputs(freqs, r, n)
        d_sample = sum(freqs.values())
        q = r / n
        if q >= 1.0:
            return float(d_sample)
        numerator = sum(((1 - q) ** j) * count
                        for j, count in freqs.items())
        denominator = sum(j * q * ((1 - q) ** (j - 1)) * count
                          for j, count in freqs.items())
        if denominator <= 0:
            return float(d_sample)
        f1 = freqs.get(1, 0)
        estimate = d_sample + f1 * numerator / denominator
        return min(estimate, float(n))


#: All estimators, keyed by name (used by the ablation bench).
DISTINCT_ESTIMATORS: dict[str, DistinctValueEstimator] = {
    estimator.name: estimator
    for estimator in (SampleDistinct(), Chao84(), GEE(), Shlosser())
}


def dictionary_cf_from_distinct(d_hat: float, n: int, k: int,
                                p: int) -> float:
    """Plug a distinct-count estimate into the simplified dictionary model.

    ``CF_hat = min(d_hat, n)/n + p/k`` — the bridge from any distinct
    estimator to a compression-fraction estimator.
    """
    if n <= 0 or k <= 0 or p <= 0:
        raise EstimationError(
            f"need positive n, k, p; got n={n}, k={k}, p={p}")
    if d_hat < 0:
        raise EstimationError(f"distinct estimate must be >= 0, got {d_hat}")
    return min(d_hat, float(n)) / n + p / k
