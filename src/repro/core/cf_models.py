"""Value histograms and closed-form compression-fraction models.

The paper's analysis (Section III) works entirely in terms of the value
*multiset* of the indexed column: ``n`` rows, ``d`` distinct values,
null-suppressed lengths ``l_i``. A :class:`ColumnHistogram` captures that
multiset exactly — distinct values plus their counts — and scales to the
paper's 100-million-row Example 1, because sampling from a table under
uniform row sampling is distributionally identical to a multinomial (or
hypergeometric) draw over its histogram.

The closed forms implemented here:

* :func:`ns_cf` — Section III-A:
  ``CF_NS = sum_i cnt_i * (l_i + c) / (n * k)``
* :func:`global_dictionary_cf` — Section III-B's simplified model:
  ``CF_D = (d * k + n * p) / (n * k) = d/n + p/k``
* :func:`paged_dictionary_cf` — Section III-B's full model with paging:
  ``CF_D = (sum_i Pg(i) * k + n * p) / (n * k)`` where ``Pg(i)`` is the
  number of leaf pages value *i* occupies in the sorted clustered layout
* :func:`paged_rle_cf` — the RLE extension's analogue (one run per value
  per page it spans).

In ``payload`` accounting these models agree *exactly* with compressing
the real index built by :mod:`repro.storage` — the integration tests
assert byte equality, which is what lets theorem-level results verified
against the models transfer to the engine.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE, DEFAULT_POINTER_BYTES
from repro.errors import EstimationError
from repro.sampling.rng import SeedLike, make_rng
from repro.storage.page import records_per_page
from repro.storage.types import DataType
from repro.compression.dictionary import (EntryStorage, _entry_stored_size,
                                          pointer_bytes_for)
from repro.compression.null_suppression import NSMode, ns_header_bytes
from repro.compression.rle import RUN_COUNT_BYTES

Order = Literal["sorted", "shuffled"]


class ColumnHistogram:
    """Exact value multiset of one column: distinct values and counts."""

    def __init__(self, dtype: DataType, values: Sequence[Any],
                 counts: Sequence[int] | np.ndarray) -> None:
        values = tuple(values)
        counts_array = np.asarray(counts, dtype=np.int64)
        if len(values) != counts_array.shape[0]:
            raise EstimationError(
                f"{len(values)} values but {counts_array.shape[0]} counts")
        if len(values) == 0:
            raise EstimationError("a histogram needs at least one value")
        if len(set(values)) != len(values):
            raise EstimationError("histogram values must be distinct")
        if np.any(counts_array <= 0):
            raise EstimationError("histogram counts must be positive")
        for value in values:
            dtype.validate(value)
        self.dtype = dtype
        self.values = values
        self.counts = counts_array
        self._sorted_cache: "ColumnHistogram | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, dtype: DataType, values: Iterable[Any],
                    ) -> "ColumnHistogram":
        """Histogram of an explicit value sequence (e.g. a table column)."""
        counter = Counter(values)
        if not counter:
            raise EstimationError("no values supplied")
        distinct = list(counter)
        return cls(dtype, distinct, [counter[v] for v in distinct])

    @classmethod
    def from_counts(cls, dtype: DataType,
                    items: Mapping[Any, int] | Iterable[tuple[Any, int]],
                    ) -> "ColumnHistogram":
        """Histogram from ``value -> count`` pairs."""
        if isinstance(items, Mapping):
            pairs = list(items.items())
        else:
            pairs = list(items)
        if not pairs:
            raise EstimationError("no counts supplied")
        values = [value for value, _ in pairs]
        counts = [count for _, count in pairs]
        return cls(dtype, values, counts)

    def with_counts(self, counts: Sequence[int] | np.ndarray,
                    ) -> "ColumnHistogram":
        """Same distinct values with new counts; zero-count values drop.

        This is how samplers express "the histogram of the sample".
        """
        counts_array = np.asarray(counts, dtype=np.int64)
        if counts_array.shape[0] != len(self.values):
            raise EstimationError(
                f"expected {len(self.values)} counts, "
                f"got {counts_array.shape[0]}")
        keep = counts_array > 0
        if not np.any(keep):
            raise EstimationError("sample histogram would be empty")
        values = [value for value, kept in zip(self.values, keep) if kept]
        return ColumnHistogram(self.dtype, values, counts_array[keep])

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of rows."""
        return int(self.counts.sum())

    @property
    def d(self) -> int:
        """Number of distinct values."""
        return len(self.values)

    def frequency_of_frequencies(self) -> dict[int, int]:
        """``f_j``: how many distinct values occur exactly ``j`` times."""
        unique, tallies = np.unique(self.counts, return_counts=True)
        return {int(j): int(t) for j, t in zip(unique, tallies)}

    # ------------------------------------------------------------------
    # Size vectors
    # ------------------------------------------------------------------
    def uncompressed_value_sizes(self) -> np.ndarray:
        """Uncompressed stored bytes of each distinct value."""
        return np.asarray(
            [self.dtype.encoded_size(value) for value in self.values],
            dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        """Uncompressed bytes of the whole column (the CF denominator)."""
        return int((self.uncompressed_value_sizes() * self.counts).sum())

    def ns_stored_sizes(self, mode: NSMode = "trailing") -> np.ndarray:
        """Per-distinct-value stored size under null suppression."""
        from repro.compression.null_suppression import ns_stored_size

        return np.asarray(
            [ns_stored_size(self.dtype, value, mode)
             for value in self.values],
            dtype=np.int64)

    # ------------------------------------------------------------------
    # Ordering and materialisation
    # ------------------------------------------------------------------
    def sorted_by_value(self) -> "ColumnHistogram":
        """Histogram with values in index-key order (cached).

        Python-value order equals encoded-byte order for every supported
        type (latin-1 CHAR and sign-flipped integers), so this is the
        order a clustered index lays rows out in.
        """
        if self._sorted_cache is None:
            order = sorted(range(self.d), key=lambda i: self.values[i])
            histogram = ColumnHistogram(
                self.dtype, [self.values[i] for i in order],
                self.counts[order])
            histogram._sorted_cache = histogram
            self._sorted_cache = histogram
        return self._sorted_cache

    def expand(self, order: Order = "sorted",
               seed: SeedLike = None) -> list[Any]:
        """Materialise the multiset as a list of values.

        ``sorted`` gives the clustered layout; ``shuffled`` a random heap
        layout (used by the block-sampling ablation).
        """
        source = self.sorted_by_value()
        expanded: list[Any] = []
        for value, count in zip(source.values, source.counts):
            expanded.extend([value] * int(count))
        if order == "sorted":
            return expanded
        if order == "shuffled":
            rng = make_rng(seed)
            permutation = rng.permutation(len(expanded))
            return [expanded[int(i)] for i in permutation]
        raise EstimationError(f"unknown expansion order {order!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnHistogram(dtype={self.dtype.name}, n={self.n}, "
                f"d={self.d})")


# ----------------------------------------------------------------------
# Closed-form CF models
# ----------------------------------------------------------------------
def uncompressed_bytes(histogram: ColumnHistogram) -> int:
    """Uncompressed column size in bytes (``n * k`` for CHAR columns)."""
    return histogram.total_bytes


def ns_cf(histogram: ColumnHistogram, mode: NSMode = "trailing") -> float:
    """Section III-A: ``CF_NS = sum cnt * (l + c) / (n * k)``."""
    stored = histogram.ns_stored_sizes(mode)
    return float((stored * histogram.counts).sum()) / histogram.total_bytes


def _entry_sizes(histogram: ColumnHistogram,
                 entry_storage: EntryStorage) -> np.ndarray:
    """Dictionary entry bytes per distinct value."""
    return np.asarray(
        [_entry_stored_size(histogram.dtype,
                            histogram.dtype.encode(value), entry_storage)
         for value in histogram.values],
        dtype=np.int64)


def global_dictionary_cf(histogram: ColumnHistogram,
                         pointer_bytes: int | None = DEFAULT_POINTER_BYTES,
                         entry_storage: EntryStorage = "fixed") -> float:
    """Section III-B simplified model: ``(d*k + n*p) / (n*k)``.

    With ``entry_storage="fixed"`` and a CHAR(k) column this is literally
    ``d/n + p/k``; the general form supports NS'd entries and other
    types.
    """
    width = pointer_bytes if pointer_bytes is not None \
        else pointer_bytes_for(histogram.d)
    entries = int(_entry_sizes(histogram, entry_storage).sum())
    compressed = entries + histogram.n * width
    return compressed / histogram.total_bytes


def pages_spanned(histogram: ColumnHistogram, rows_per_page: int,
                  ) -> np.ndarray:
    """The paper's ``Pg(i)``: pages each value occupies, sorted layout."""
    if rows_per_page <= 0:
        raise EstimationError(
            f"rows per page must be positive, got {rows_per_page}")
    ordered = histogram.sorted_by_value()
    ends = np.cumsum(ordered.counts)
    starts = ends - ordered.counts
    return (ends - 1) // rows_per_page - starts // rows_per_page + 1


def layout_rows_per_page(histogram: ColumnHistogram,
                         page_size: int = DEFAULT_PAGE_SIZE,
                         record_bytes: int | None = None,
                         fill_factor: float = 1.0) -> int:
    """Rows per leaf page for the index layout being modelled.

    ``record_bytes`` defaults to the column's own width (single-column
    clustered index, the paper's canonical setting); pass the full leaf
    record width for multi-column or non-clustered indexes.
    """
    if record_bytes is None:
        fixed = histogram.dtype.fixed_size
        if fixed is None:
            raise EstimationError(
                "paged models need a fixed record size; pass record_bytes")
        record_bytes = fixed
    return records_per_page(int(fill_factor * page_size), record_bytes)


def paged_dictionary_cf(histogram: ColumnHistogram,
                        pointer_bytes: int | None = DEFAULT_POINTER_BYTES,
                        entry_storage: EntryStorage = "fixed",
                        page_size: int = DEFAULT_PAGE_SIZE,
                        record_bytes: int | None = None,
                        fill_factor: float = 1.0) -> float:
    """Section III-B full model: ``(sum Pg(i)*k + n*p) / (n*k)``.

    Each distinct value is stored once in every page it occupies (the
    in-lined per-page dictionary), and every row stores a pointer.
    Requires a fixed ``pointer_bytes``: with a derived width the pointer
    size would vary per page, which is exactly the complication the
    paper's simplified model avoids.
    """
    if pointer_bytes is None:
        raise EstimationError(
            "the paged dictionary model needs a fixed pointer width")
    rows_per_page = layout_rows_per_page(
        histogram, page_size, record_bytes, fill_factor)
    ordered = histogram.sorted_by_value()
    spans = pages_spanned(ordered, rows_per_page)
    entries = _entry_sizes(ordered, entry_storage)
    compressed = int((spans * entries).sum()) + ordered.n * pointer_bytes
    return compressed / ordered.total_bytes


def paged_rle_cf(histogram: ColumnHistogram,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 record_bytes: int | None = None,
                 fill_factor: float = 1.0) -> float:
    """RLE on a sorted clustered layout: one run per value per page."""
    rows_per_page = layout_rows_per_page(
        histogram, page_size, record_bytes, fill_factor)
    ordered = histogram.sorted_by_value()
    spans = pages_spanned(ordered, rows_per_page)
    header = ns_header_bytes(ordered.dtype)
    bodies = ordered.ns_stored_sizes("trailing") - header
    run_sizes = RUN_COUNT_BYTES + header + bodies
    compressed = int((spans * run_sizes).sum())
    return compressed / ordered.total_bytes


def expected_distinct_in_sample(histogram: ColumnHistogram, r: int,
                                with_replacement: bool = True) -> float:
    """``E[d']`` for a uniform sample of ``r`` rows.

    With replacement: ``sum_i 1 - (1 - cnt_i/n)^r``; without:
    ``sum_i 1 - C(n - cnt_i, r) / C(n, r)``.
    """
    if r <= 0:
        raise EstimationError(f"sample size must be positive, got {r}")
    n = histogram.n
    counts = histogram.counts.astype(np.float64)
    if with_replacement:
        log_miss = r * np.log1p(-counts / n)
        return float((1.0 - np.exp(log_miss)).sum())
    if r > n:
        raise EstimationError(
            f"cannot draw {r} rows from {n} without replacement")
    from scipy.special import gammaln  # local: scipy optional elsewhere

    log_total = gammaln(n + 1) - gammaln(r + 1) - gammaln(n - r + 1)
    remaining = n - counts
    with np.errstate(invalid="ignore"):
        log_miss = (gammaln(remaining + 1) - gammaln(r + 1)
                    - gammaln(remaining - r + 1) - log_total)
    miss = np.where(remaining >= r, np.exp(log_miss), 0.0)
    return float((1.0 - miss).sum())
