"""Unit tests for repro.compression.null_suppression."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import CharType, IntegerType, VarCharType
from repro.compression.null_suppression import (NullSuppression,
                                                ns_header_bytes,
                                                ns_stored_size)


def char_records(values: list[str], k: int = 20) -> tuple:
    schema = single_char_schema(k)
    return schema, [encode_record(schema, (v,)) for v in values]


class TestPaperFigure1a:
    """The worked example from Figure 1.a / Section II-A."""

    def test_abc_in_char20_stores_3_plus_1_bytes(self):
        schema, records = char_records(["abc"])
        block = NullSuppression().compress(records, schema)
        # "null suppression would only store the value 'abc' along with
        # its length": 3 body bytes + 1 length byte.
        assert block.payload_size == 3 + 1

    def test_uncompressed_would_use_all_20_bytes(self):
        schema, records = char_records(["abc"])
        assert len(records[0]) == 20

    def test_cf_for_single_value(self):
        schema, records = char_records(["abc"])
        block = NullSuppression().compress(records, schema)
        assert block.payload_size / len(records[0]) == pytest.approx(0.2)


class TestTrailingMode:
    def test_roundtrip(self):
        schema, records = char_records(
            ["", "a", "abc", "x" * 20, "mid dle", "trail  mid"])
        algorithm = NullSuppression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_payload_is_sum_of_l_plus_c(self):
        values = ["a", "bb", "ccc", "dddd"]
        schema, records = char_records(values)
        block = NullSuppression().compress(records, schema)
        assert block.payload_size == sum(len(v) + 1 for v in values)

    def test_blob_differs_from_payload_only_by_headers(self):
        schema, records = char_records(["abc", "de"])
        block = NullSuppression().compress(records, schema)
        # Trailing NS blobs carry no extra structure beyond the model.
        assert block.serialized_size == block.payload_size

    def test_empty_record_set_rejected(self):
        schema = single_char_schema(8)
        with pytest.raises(CompressionError):
            NullSuppression().compress([], schema)

    def test_name(self):
        assert NullSuppression().name == "null_suppression"
        assert NullSuppression(mode="runs").name == "null_suppression_runs"

    def test_unknown_mode_rejected(self):
        with pytest.raises(CompressionError):
            NullSuppression(mode="banana")


class TestRunsMode:
    def test_zero_run_compresses(self):
        """Figure 1.a's zero-padded shape: interior zeros collapse."""
        schema, records = char_records(["00000000000000000abc"])
        trailing = NullSuppression().compress(records, schema)
        runs = NullSuppression(mode="runs").compress(records, schema)
        assert runs.payload_size < trailing.payload_size
        # 17 zeros -> 3-byte token; 'abc' literal; 1 length byte.
        assert runs.payload_size == 1 + 3 + 3

    def test_roundtrip_with_runs(self):
        values = ["0000000123", "a    b", "0" * 20, " leading",
                  "no runs here", "\x1b escape \x1b"]
        schema, records = char_records(values)
        algorithm = NullSuppression(mode="runs")
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_short_runs_left_alone(self):
        schema, records = char_records(["a00b"])
        block = NullSuppression(mode="runs").compress(records, schema)
        assert block.payload_size == 1 + 4  # no token for a 2-run

    def test_escape_byte_roundtrip(self):
        schema, records = char_records(["\x1b\x1b\x1b"])
        algorithm = NullSuppression(mode="runs")
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records
        # Each ESC costs 2 bytes: expansion is allowed but reversible.
        assert block.payload_size == 1 + 6


class TestOtherTypes:
    def test_integer_column(self):
        schema = Schema([Column("n", IntegerType())])
        records = [encode_record(schema, (v,))
                   for v in (0, 7, 300, -1, 2**30)]
        algorithm = NullSuppression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records
        # 0 and 7 and -1 need 1 byte, 300 needs 2, 2**30 needs 4.
        assert block.payload_size == (1 + 1) * 3 + (1 + 2) + (1 + 4)

    def test_varchar_column_identity(self):
        schema = Schema([Column("v", VarCharType(30))])
        records = [encode_record(schema, (v,)) for v in ("ab", "", "xyz ")]
        algorithm = NullSuppression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records
        assert block.payload_size == sum(len(r) for r in records)

    def test_multi_column_compressed_independently(self):
        schema = Schema([Column.of("a", "char(10)"),
                         Column.of("n", "integer")])
        records = [encode_record(schema, ("hi", 5)),
                   encode_record(schema, ("there", 70000))]
        algorithm = NullSuppression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records
        assert len(block.columns) == 2
        assert block.columns[0].payload_size == (2 + 1) + (5 + 1)
        assert block.columns[1].payload_size == (1 + 1) + (1 + 3)


class TestHelpers:
    def test_ns_header_bytes(self):
        assert ns_header_bytes(CharType(20)) == 1
        assert ns_header_bytes(CharType(300)) == 2
        assert ns_header_bytes(VarCharType(10)) == 2
        assert ns_header_bytes(IntegerType()) == 1

    def test_ns_header_bytes_runs_mode_wider(self):
        assert ns_header_bytes(CharType(200), "runs") == 2
        assert ns_header_bytes(CharType(100), "runs") == 1

    def test_ns_stored_size(self):
        assert ns_stored_size(CharType(20), "abc") == 4
        assert ns_stored_size(IntegerType(), 7) == 2
        assert ns_stored_size(VarCharType(9), "abc") == 5

    def test_tracker_matches_compress(self):
        values = ["a", "bb  ", "ccccc", "", "x" * 20]
        schema, records = char_records(values)
        algorithm = NullSuppression()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size
        assert tracker.row_count == len(records)

    def test_tracker_size_with_does_not_mutate(self):
        schema, records = char_records(["abc"])
        tracker = NullSuppression().make_tracker(schema)
        preview = tracker.size_with([records[0]])
        assert tracker.size == 0
        tracker.add([records[0]])
        assert tracker.size == preview
