"""Cross-process store behaviour: locking, single materialization,
torn-write safety.

Two processes open the same store directory concurrently; the per-key
``flock`` must serialize materialization (the factory runs exactly once
across both processes) and every entry either reads back complete or
not at all — never a torn half-write. These tests fork real processes
(the container is POSIX; ``fork`` keeps the workers importable without
re-running pytest's collection).
"""

import json
import multiprocessing
import pickle
import time

import pytest

from repro.sampling.row_samplers import WithReplacementSampler
from repro.workloads.generators import make_table
from repro.engine.samples import materialize_table_sample
from repro.store import HAVE_FLOCK, FileLock, SampleStore, digest_parts

pytestmark = pytest.mark.skipif(
    not HAVE_FLOCK, reason="no fcntl flock on this platform")

_CTX = multiprocessing.get_context("fork")

KEY = digest_parts("contended-key")


def _draw_sample():
    table = make_table(n=1500, d=30, k=16, page_size=1024, seed=21)
    return materialize_table_sample(table, WithReplacementSampler(),
                                    0.05, 13)


def _contending_worker(store_dir, log_path, result_path, barrier):
    """Race for one key; record whether this process materialized."""
    store = SampleStore(store_dir)

    def factory():
        with open(log_path, "a", encoding="utf-8") as log:
            log.write("materialized\n")
        time.sleep(0.2)  # widen the race window
        return _draw_sample()

    barrier.wait(timeout=30)
    sample, hit = store.get_or_create_sample(KEY, factory)
    payload = {"hit": hit, "rows": len(sample.rows),
               "first_row": repr(sample.rows[0])}
    with open(result_path, "w", encoding="utf-8") as out:
        json.dump(payload, out)


def _locker_worker(lock_path, acquired_at_path, barrier):
    """Blocks on a lock the parent holds; records when it got in."""
    barrier.wait(timeout=30)
    with FileLock(lock_path):
        with open(acquired_at_path, "w", encoding="utf-8") as out:
            out.write(repr(time.monotonic()))


class TestCrossProcess:
    def test_two_processes_materialize_once(self, tmp_path):
        store_dir = tmp_path / "store"
        SampleStore(store_dir)  # pre-create so workers race on entries
        log_path = tmp_path / "materializations.log"
        results = [tmp_path / "result-0.json", tmp_path / "result-1.json"]
        barrier = _CTX.Barrier(3)
        workers = [
            _CTX.Process(target=_contending_worker,
                         args=(str(store_dir), str(log_path),
                               str(result), barrier))
            for result in results
        ]
        for worker in workers:
            worker.start()
        barrier.wait(timeout=30)  # release both at once
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # Exactly one process ran the factory...
        lines = log_path.read_text().splitlines()
        assert lines == ["materialized"]
        # ...the other saw a hit, and both got the same sample.
        outcomes = [json.loads(result.read_text()) for result in results]
        assert sorted(o["hit"] for o in outcomes) == [False, True]
        assert outcomes[0]["rows"] == outcomes[1]["rows"] > 0
        assert outcomes[0]["first_row"] == outcomes[1]["first_row"]

    def test_no_torn_writes_after_contention(self, tmp_path):
        """The winning entry validates end to end (checksum intact)."""
        store_dir = tmp_path / "store"
        SampleStore(store_dir)
        barrier = _CTX.Barrier(3)
        workers = [
            _CTX.Process(target=_contending_worker,
                         args=(str(store_dir), str(tmp_path / "log"),
                               str(tmp_path / f"r{i}.json"), barrier))
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        barrier.wait(timeout=30)
        for worker in workers:
            worker.join(timeout=60)
        fresh = SampleStore(store_dir)
        loaded = fresh.get_sample(KEY)
        assert loaded is not None  # envelope parsed + checksum passed
        assert loaded.rows == _draw_sample().rows
        assert fresh.counters["quarantined"] == 0
        # No stray tmp files left behind by either writer.
        assert not list(store_dir.rglob(".tmp-*"))

    def test_lock_contention_blocks_second_process(self, tmp_path):
        lock_path = tmp_path / "contended.lock"
        acquired_at = tmp_path / "acquired_at.txt"
        barrier = _CTX.Barrier(2)
        lock = FileLock(lock_path)
        lock.acquire()
        try:
            worker = _CTX.Process(target=_locker_worker,
                                  args=(str(lock_path), str(acquired_at),
                                        barrier))
            worker.start()
            barrier.wait(timeout=30)
            released_at = time.monotonic() + 0.5
            time.sleep(0.5)  # child must sit blocked this whole time
            assert not acquired_at.exists()
        finally:
            lock.release()
        worker.join(timeout=60)
        assert worker.exitcode == 0
        child_acquired = float(acquired_at.read_text())
        assert child_acquired >= released_at - 0.1

    def test_store_handle_crosses_process_boundary(self, tmp_path):
        """A pickled handle reopens the same directory (executor path)."""
        store = SampleStore(tmp_path / "store", max_bytes=1 << 20)
        store.put_sample(KEY, _draw_sample())
        clone = pickle.loads(pickle.dumps(store))
        assert clone.max_bytes == store.max_bytes
        assert clone.get_sample(KEY) is not None

    def test_corrupt_entry_race_rematerializes_exactly_once(
            self, tmp_path):
        """Two processes racing a byte-flipped envelope: one factory run.

        A valid entry is corrupted in place on disk; both racers see
        the checksum miss (quarantine-as-miss), and the per-key flock
        must still collapse re-materialization to exactly one factory
        run across both processes — the second racer reads the fresh
        entry the winner wrote.
        """
        store_dir = tmp_path / "store"
        store = SampleStore(store_dir)
        store.put_sample(KEY, _draw_sample())
        entry = store._entry_path("samples", KEY)
        blob = bytearray(entry.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one body byte
        entry.write_bytes(bytes(blob))
        log_path = tmp_path / "materializations.log"
        results = [tmp_path / "result-0.json", tmp_path / "result-1.json"]
        barrier = _CTX.Barrier(3)
        workers = [
            _CTX.Process(target=_contending_worker,
                         args=(str(store_dir), str(log_path),
                               str(result), barrier))
            for result in results
        ]
        for worker in workers:
            worker.start()
        barrier.wait(timeout=30)
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # Exactly one re-materialization across both processes, and
        # both racers agree on the recovered sample.
        assert log_path.read_text().splitlines() == ["materialized"]
        outcomes = [json.loads(result.read_text()) for result in results]
        assert sorted(o["hit"] for o in outcomes) == [False, True]
        assert outcomes[0]["first_row"] == outcomes[1]["first_row"]
        # The corrupt envelope was moved aside, and the rewritten
        # entry reads clean from a fresh handle.
        fresh = SampleStore(store_dir)
        recovered = fresh.get_sample(KEY)
        assert recovered is not None
        assert recovered.rows == _draw_sample().rows
        assert fresh.counters["quarantined"] == 0
