"""Unit tests for repro.workloads.generators and scenarios."""

import pytest

from repro.errors import ExperimentError
from repro.storage.types import CharType
from repro.workloads.generators import (histogram_to_table, make_histogram,
                                        make_multicolumn_table, make_table)
from repro.workloads.scenarios import SCENARIOS, get_scenario


class TestMakeHistogram:
    def test_exact_parameters(self):
        histogram = make_histogram(n=10_000, d=123, k=20, seed=1)
        assert histogram.n == 10_000
        assert histogram.d == 123
        assert isinstance(histogram.dtype, CharType)
        assert histogram.dtype.k == 20

    def test_length_control(self):
        histogram = make_histogram(n=1000, d=50, k=30, min_len=10,
                                   max_len=12, seed=2)
        lengths = [len(v) for v in histogram.values]
        assert all(10 <= length <= 12 for length in lengths)

    def test_distribution_choice(self):
        uniform = make_histogram(n=1000, d=10, k=8,
                                 distribution="uniform", seed=3)
        assert uniform.counts.max() - uniform.counts.min() <= 1

    def test_reproducible(self):
        first = make_histogram(n=500, d=20, k=12, seed=9)
        second = make_histogram(n=500, d=20, k=12, seed=9)
        assert first.values == second.values
        assert (first.counts == second.counts).all()


class TestHistogramToTable:
    def test_row_count_and_multiset(self):
        histogram = make_histogram(n=300, d=10, k=12, seed=4)
        table = histogram_to_table(histogram, page_size=512, seed=5)
        assert table.num_rows == 300
        from collections import Counter
        table_counts = Counter(v for (v,) in table.rows())
        hist_counts = dict(zip(histogram.values,
                               (int(c) for c in histogram.counts)))
        assert table_counts == Counter(hist_counts)

    def test_sorted_order(self):
        histogram = make_histogram(n=100, d=10, k=12, seed=4)
        table = histogram_to_table(histogram, order="sorted",
                                   page_size=512)
        values = [v for (v,) in table.rows()]
        assert values == sorted(values)

    def test_make_table_one_call(self):
        table = make_table(n=200, d=10, k=12, page_size=512, seed=6)
        assert table.num_rows == 200


class TestMultiColumnTable:
    def test_schema_and_rows(self):
        table = make_multicolumn_table(
            "orders", 500, [("status", 10, 5), ("customer", 24, 50)],
            page_size=1024, seed=7)
        assert table.schema.names == ("status", "customer")
        assert table.num_rows == 500
        statuses = set(table.column_values("status"))
        assert len(statuses) == 5

    def test_empty_specs_rejected(self):
        with pytest.raises(ExperimentError):
            make_multicolumn_table("t", 100, [])


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builds_at_requested_n(self, name):
        scenario = get_scenario(name)
        histogram = scenario.build(1500, seed=11)
        assert histogram.n == 1500
        assert histogram.d >= 1
        assert histogram.dtype.k == scenario.k

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_reproducible(self, name):
        scenario = get_scenario(name)
        first = scenario.build(800, seed=13)
        second = scenario.build(800, seed=13)
        assert first.values == second.values

    def test_default_n(self):
        scenario = get_scenario("status_codes")
        assert scenario.build(seed=1).n == scenario.default_n

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            get_scenario("tpch_lineitem")

    def test_bad_n_rejected(self):
        with pytest.raises(ExperimentError):
            get_scenario("status_codes").build(0)

    def test_regimes_differ(self):
        """Scenario d-regimes should span the paper's small/large split."""
        small = get_scenario("status_codes").build(10_000, seed=1)
        large = get_scenario("order_comments").build(10_000, seed=1)
        assert small.d / small.n < 0.01
        assert large.d / large.n > 0.5
