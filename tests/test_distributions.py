"""Unit tests for repro.workloads.distributions."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.workloads.distributions import (all_singleton_counts,
                                           exact_counts_from_weights,
                                           geometric_counts, make_counts,
                                           singleton_heavy_counts,
                                           uniform_counts, zipf_counts)


class TestExactCounts:
    def test_sums_exactly(self):
        weights = np.array([0.31, 0.27, 0.42])
        counts = exact_counts_from_weights(weights, 1000)
        assert counts.sum() == 1000

    def test_all_positive(self):
        weights = np.array([1e9, 1.0, 1.0])
        counts = exact_counts_from_weights(weights, 100)
        assert np.all(counts >= 1)

    def test_proportionality(self):
        counts = exact_counts_from_weights(np.array([3.0, 1.0]), 4000)
        assert abs(counts[0] - 3 * counts[1]) <= 4

    def test_n_below_d_rejected(self):
        with pytest.raises(ExperimentError):
            exact_counts_from_weights(np.ones(10), 5)

    def test_bad_weights_rejected(self):
        with pytest.raises(ExperimentError):
            exact_counts_from_weights(np.array([1.0, -1.0]), 10)
        with pytest.raises(ExperimentError):
            exact_counts_from_weights(np.array([]), 10)


class TestNamedDistributions:
    @pytest.mark.parametrize("maker", [uniform_counts,
                                       singleton_heavy_counts])
    def test_exact_n_and_d(self, maker):
        counts = maker(10_000, 37)
        assert counts.sum() == 10_000
        assert counts.shape == (37,)
        assert np.all(counts >= 1)

    def test_zipf_exact_and_skewed(self):
        counts = zipf_counts(10_000, 100, s=1.2)
        assert counts.sum() == 10_000
        assert counts[0] > counts[-1]
        assert counts[0] > 10 * counts[-1]

    def test_zipf_zero_exponent_is_uniform(self):
        assert np.array_equal(zipf_counts(1000, 10, s=0.0),
                              uniform_counts(1000, 10))

    def test_zipf_negative_exponent_rejected(self):
        with pytest.raises(ExperimentError):
            zipf_counts(100, 10, s=-1.0)

    def test_geometric_decays(self):
        counts = geometric_counts(10_000, 10, ratio=0.5)
        assert counts.sum() == 10_000
        assert np.all(np.diff(counts.astype(np.int64)) <= 0)

    def test_geometric_ratio_validated(self):
        with pytest.raises(ExperimentError):
            geometric_counts(100, 5, ratio=1.0)

    def test_uniform_near_equal(self):
        counts = uniform_counts(1003, 10)
        assert counts.max() - counts.min() <= 1

    def test_singleton_heavy_shape(self):
        counts = singleton_heavy_counts(1000, 100)
        assert counts[0] == 901
        assert np.all(counts[1:] == 1)

    def test_all_singletons(self):
        counts = all_singleton_counts(50)
        assert counts.sum() == 50
        assert np.all(counts == 1)
        with pytest.raises(ExperimentError):
            all_singleton_counts(0)


class TestMakeCounts:
    def test_dispatch(self):
        assert np.array_equal(make_counts("uniform", 100, 4),
                              uniform_counts(100, 4))
        assert make_counts("zipf", 100, 4, s=2.0).sum() == 100

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            make_counts("pareto", 100, 4)
