"""Unit tests for the size-only vectorized compression kernels."""

import pickle

import numpy as np
import pytest

from repro.compression.kernels import (ColumnView, DISABLE_KERNELS_ENV,
                                       build_column_views, build_leaf_views,
                                       distinct_count, kernels_enabled,
                                       magnitude_widths, minimal_int_widths,
                                       stripped_lengths, unique_rows)
from repro.compression.registry import get_algorithm, list_algorithms
from repro.engine import EstimationEngine, EstimationRequest
from repro.errors import EncodingError
from repro.storage.index import Index, IndexKind
from repro.storage.record import (decode_record, encode_record,
                                  fixed_column_offsets, record_key,
                                  split_record, split_records)
from repro.storage.schema import Column, Schema
from repro.storage.types import minimal_int_bytes
from repro.workloads.generators import make_table


@pytest.fixture
def kernels_on(monkeypatch):
    """Force-enable kernels: these tests assert kernel-path behavior.

    The CI matrix runs the whole suite with ``REPRO_DISABLE_KERNELS=1``;
    tests that count kernel hits or inspect the view cache must pin the
    fast path on locally or they would (correctly) observe fallbacks.
    """
    monkeypatch.delenv(DISABLE_KERNELS_ENV, raising=False)


def fixed_schema() -> Schema:
    return Schema([Column.of("name", "char(10)"),
                   Column.of("qty", "integer"),
                   Column.of("big", "bigint")])


def mixed_schema() -> Schema:
    return Schema([Column.of("name", "char(6)"),
                   Column.of("note", "varchar(40)"),
                   Column.of("qty", "integer")])


# ----------------------------------------------------------------------
# Vector primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_minimal_int_widths_boundaries(self):
        values = []
        for width in range(1, 9):
            hi = (1 << (8 * width - 1)) - 1
            lo = -(1 << (8 * width - 1))
            values.extend([hi, hi - 1, lo, lo + 1])
            if width < 8:
                values.extend([hi + 1, lo - 1])
        values.extend([0, 1, -1])
        got = minimal_int_widths(np.array(values, dtype=np.int64))
        want = [minimal_int_bytes(v) for v in values]
        assert got.tolist() == want

    def test_magnitude_widths_beyond_int64(self):
        # a BIGINT delta can need 9 bytes: magnitude up to 2**64 - 1
        magnitudes = np.array([(1 << 63) - 1, 1 << 63, (1 << 64) - 1],
                              dtype=np.uint64)
        assert magnitude_widths(magnitudes).tolist() == [8, 9, 9]
        # cross-check against the scalar on the extreme true delta
        assert minimal_int_bytes((2 ** 63 - 1) - (-2 ** 63)) == 9

    def test_stripped_lengths_matches_rstrip(self):
        raws = [b"abc       ", b"          ", b"a b c d  x", b"xxxxxxxxxx",
                b"\x00         ", b"   mid    "]
        raws = [r[:10].ljust(10, b" ") for r in raws]
        matrix = np.frombuffer(b"".join(raws), np.uint8).reshape(6, 10)
        got = stripped_lengths(matrix)
        assert got.tolist() == [len(r.rstrip(b" ")) for r in raws]

    def test_unique_rows_and_distinct_count(self):
        matrix = np.frombuffer(b"aabbaaccaabb", np.uint8).reshape(6, 2)
        view = ColumnView(None, 6, matrix=matrix)
        assert unique_rows(view).shape == (3, 2)
        assert distinct_count(view) == 3

    def test_distinct_count_prefers_raw_slices(self):
        view = ColumnView(None, 4, raw_slices=[b"x", b"y", b"x", b"z"])
        assert distinct_count(view) == 3


# ----------------------------------------------------------------------
# Columnar views
# ----------------------------------------------------------------------
class TestColumnViews:
    def test_fixed_views_match_slices(self):
        schema = fixed_schema()
        rows = [("ab", 7, -1), ("zzz", -300, 2 ** 40), ("", 0, -2 ** 63)]
        records = [encode_record(schema, row) for row in rows]
        views = build_column_views(schema, records)
        assert len(views) == 3
        for position, view in enumerate(views):
            expected = [split_record(schema, r)[position] for r in records]
            assert [view.matrix[i].tobytes()
                    for i in range(view.count)] == expected

    def test_varchar_views_carry_offsets_and_lengths(self):
        schema = mixed_schema()
        rows = [("a", "hello", 1), ("b", "", 2), ("c", "a longer note", 3)]
        records = [encode_record(schema, row) for row in rows]
        views = build_column_views(schema, records)
        note = views[1]
        slices = [split_record(schema, r)[1] for r in records]
        assert note.lengths.tolist() == [len(s) for s in slices]
        for i, s in enumerate(slices):
            start = int(note.offsets[i])
            assert note.payload[start:start + len(s)].tobytes() == s

    def test_padded_matrix_equality_is_exact(self):
        schema = Schema([Column.of("v", "varchar(8)")])
        rows = [("a",), ("a\x00",), ("a",), ("",)]
        records = [encode_record(schema, r) for r in rows]
        (view,) = build_column_views(schema, records)
        padded = view.padded_matrix
        assert (padded[0] == padded[2]).all()
        assert not (padded[0] == padded[1]).all()
        assert distinct_count(view) == 3

    def test_rejects_empty_and_misfit_batches(self):
        schema = fixed_schema()
        record = encode_record(schema, ("a", 1, 2))
        assert build_column_views(schema, []) is None
        assert build_column_views(schema, [record[:-1]]) is None
        assert build_column_views(schema, [record, record + b"x"]) is None

    def test_leaf_views_slice_one_parent(self):
        schema = fixed_schema()
        records = [encode_record(schema, (f"r{i}", i, -i))
                   for i in range(10)]
        leaves = [records[:4], records[4:9], records[9:]]
        leaf_views = build_leaf_views(schema, leaves)
        assert [v[0].count for v in leaf_views] == [4, 5, 1]
        # derived arrays come from the shared parent, sliced
        parent = leaf_views[0][1]._parent
        assert parent is leaf_views[2][1]._parent
        ints = np.concatenate([v[1].int_values for v in leaf_views])
        assert ints.tolist() == list(range(10))
        assert "ints" in parent._derived

    def test_leaf_views_reject_empty_leaf(self):
        schema = fixed_schema()
        record = encode_record(schema, ("a", 1, 2))
        assert build_leaf_views(schema, [[record], []]) is None


# ----------------------------------------------------------------------
# size_of dispatch
# ----------------------------------------------------------------------
class TestSizeOf:
    def test_every_registered_algorithm_is_covered(self):
        schema = Schema([Column.of("a", "char(8)")])
        records = [encode_record(schema, (v,))
                   for v in ("ab", "ab", "x", "", "long one", "a  b0000")]
        views = build_column_views(schema, records)
        for name in list_algorithms():
            algorithm = get_algorithm(name)
            assert algorithm.size_of(views, schema) == \
                algorithm.compress(records, schema).payload_size, name


# ----------------------------------------------------------------------
# Satellite: memoized offsets and batch splitting
# ----------------------------------------------------------------------
class TestRecordHelpers:
    def test_fixed_column_offsets_memoized(self):
        first = fixed_column_offsets(fixed_schema())
        second = fixed_column_offsets(fixed_schema())
        assert first == (0, 10, 14, 22)
        assert first is second  # same cached tuple, not a rebuild

    def test_variable_schema_has_no_offsets(self):
        assert fixed_column_offsets(mixed_schema()) is None

    def test_split_records_matches_split_record(self):
        for schema, rows in (
                (fixed_schema(), [("a", 1, 2), ("bb", -3, 4)]),
                (mixed_schema(), [("a", "note", 1), ("b", "", 2)])):
            records = [encode_record(schema, row) for row in rows]
            batch = split_records(schema, records)
            for position in range(len(schema)):
                assert batch[position] == [
                    split_record(schema, r)[position] for r in records]

    def test_split_records_rejects_bad_width(self):
        schema = fixed_schema()
        with pytest.raises(EncodingError):
            split_records(schema, [b"short"])


# ----------------------------------------------------------------------
# Satellite: record_key decodes only the requested positions
# ----------------------------------------------------------------------
class TestRecordKey:
    def test_matches_full_decode(self):
        for schema, row in ((fixed_schema(), ("widget", 42, -7)),
                            (mixed_schema(), ("ab", "some note", 9))):
            record = encode_record(schema, row)
            full = decode_record(schema, record)
            for positions in ([0], [1], [2], [2, 0], [1, 1], [0, 1, 2]):
                assert record_key(schema, record, positions) == \
                    tuple(full[i] for i in positions)

    def test_rejects_truncated_and_oversized(self):
        for schema, row in ((fixed_schema(), ("w", 1, 2)),
                            (mixed_schema(), ("ab", "note", 9))):
            record = encode_record(schema, row)
            with pytest.raises(EncodingError):
                record_key(schema, record[:-1], [0])
            with pytest.raises(EncodingError):
                record_key(schema, record + b"x", [0])

    def test_skips_decoding_unrequested_columns(self, monkeypatch):
        schema = mixed_schema()
        record = encode_record(schema, ("ab", "note", 9))
        calls = []
        original = type(schema[1].dtype).decode

        def spy(self, data):
            calls.append(data)
            return original(self, data)

        monkeypatch.setattr(type(schema[1].dtype), "decode", spy)
        assert record_key(schema, record, [2]) == (9,)
        assert calls == []  # the varchar column was skipped, not decoded


# ----------------------------------------------------------------------
# Index.estimate_compression
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def char_index():
    table = make_table(1200, 60, 18, seed=77)
    index = Index("t", table.schema, ["a"], page_size=2048)
    index.build_from_rows(list(table.rows()))
    return index


class TestEstimateCompression:
    @pytest.mark.parametrize("name", list_algorithms())
    @pytest.mark.parametrize("accounting", ["payload", "physical"])
    @pytest.mark.parametrize("repack", [False, True])
    def test_identical_to_compress(self, char_index, name, accounting,
                                   repack):
        algorithm = get_algorithm(name)
        assert char_index.estimate_compression(
            algorithm, accounting=accounting, repack_pages=repack) == \
            char_index.compress(algorithm, accounting=accounting,
                                repack_pages=repack)

    def test_counts_kernel_blocks(self, char_index, kernels_on):
        hits = {"kernel": 0, "fallback": 0}
        char_index.estimate_compression(
            get_algorithm("dictionary"),
            on_kernel=lambda: hits.__setitem__("kernel",
                                               hits["kernel"] + 1),
            on_fallback=lambda: hits.__setitem__("fallback",
                                                 hits["fallback"] + 1))
        assert hits["kernel"] == char_index.size().leaf_pages
        assert hits["fallback"] == 0

    def test_counts_scalar_fallbacks_for_uncovered_codec(self, char_index):
        # Every registered codec now has a kernel (NS runs included),
        # so an uncovered one is simulated: a codec whose size_of
        # declares itself unavailable must route every block scalar.
        from repro.compression.null_suppression import NullSuppression
        from repro.errors import KernelUnavailable

        class Uncovered(NullSuppression):
            def size_of(self, views, schema):
                raise KernelUnavailable("deliberately scalar-only")

        hits = {"kernel": 0, "fallback": 0}
        char_index.estimate_compression(
            Uncovered(),
            on_kernel=lambda: hits.__setitem__("kernel",
                                               hits["kernel"] + 1),
            on_fallback=lambda: hits.__setitem__("fallback",
                                                 hits["fallback"] + 1))
        assert hits["kernel"] == 0
        assert hits["fallback"] == char_index.size().leaf_pages

    def test_repack_goes_scalar(self, char_index):
        hits = {"fallback": 0}
        char_index.estimate_compression(
            get_algorithm("dictionary"), accounting="physical",
            repack_pages=True,
            on_fallback=lambda: hits.__setitem__("fallback",
                                                 hits["fallback"] + 1))
        assert hits["fallback"] == 1

    def test_index_scope_is_one_block(self, char_index, kernels_on):
        hits = {"kernel": 0}
        char_index.estimate_compression(
            get_algorithm("global_dictionary"),
            on_kernel=lambda: hits.__setitem__("kernel",
                                               hits["kernel"] + 1))
        assert hits["kernel"] == 1

    def test_env_flag_disables_kernels(self, char_index, kernels_on,
                                       monkeypatch):
        enabled = char_index.estimate_compression(
            get_algorithm("null_suppression"))
        monkeypatch.setenv(DISABLE_KERNELS_ENV, "1")
        assert not kernels_enabled()
        hits = {"kernel": 0, "fallback": 0}
        disabled = char_index.estimate_compression(
            get_algorithm("null_suppression"),
            on_kernel=lambda: hits.__setitem__("kernel",
                                               hits["kernel"] + 1),
            on_fallback=lambda: hits.__setitem__("fallback",
                                                 hits["fallback"] + 1))
        assert hits["kernel"] == 0 and hits["fallback"] > 0
        assert disabled == enabled

    def test_view_cache_survives_reuse_but_not_pickle(self, char_index,
                                                      kernels_on):
        char_index.estimate_compression(get_algorithm("null_suppression"))
        assert char_index._size_view_cache
        clone = pickle.loads(pickle.dumps(char_index))
        assert clone._size_view_cache == {}
        assert clone.estimate_compression(get_algorithm("dictionary")) \
            == char_index.compress(get_algorithm("dictionary"))

    def test_cache_invalidated_by_insert(self, kernels_on):
        table = make_table(300, 20, 12, seed=3)
        index = Index("t", table.schema, ["a"], page_size=1024)
        rows = list(table.rows())
        index.build_from_rows(rows[:-1])
        before = index.estimate_compression(get_algorithm("dictionary"))
        assert index._size_view_cache
        index.insert(rows[-1])
        assert not index._size_view_cache
        after = index.estimate_compression(get_algorithm("dictionary"))
        assert after == index.compress(get_algorithm("dictionary"))
        assert after != before


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
class TestEngineWiring:
    def _run(self, seed=901):
        table = make_table(800, 40, 16, seed=5)
        requests = [
            EstimationRequest(table=table, columns=("a",), algorithm=name,
                              fraction=0.2, trials=2,
                              kind=IndexKind.CLUSTERED)
            for name in ("null_suppression", "dictionary",
                         "null_suppression_runs")]
        engine = EstimationEngine(seed=seed)
        return engine.execute(requests)

    def test_stats_count_kernels_and_fallbacks(self, kernels_on):
        batch = self._run()
        assert batch.stats["size_kernel_hits"] > 0
        # every registered codec (runs mode included) now has a size
        # kernel, so nothing in this batch should fall back to scalar
        assert batch.stats["size_scalar_fallbacks"] == 0

    def test_disabled_kernels_match_bit_for_bit(self, kernels_on,
                                                monkeypatch):
        enabled = self._run()
        assert enabled.stats["size_kernel_hits"] > 0
        monkeypatch.setenv(DISABLE_KERNELS_ENV, "1")
        disabled = self._run()
        assert disabled.stats["size_kernel_hits"] == 0
        assert disabled.stats["size_scalar_fallbacks"] > 0
        for fast, slow in zip(enabled.results, disabled.results):
            assert fast.estimates == slow.estimates
