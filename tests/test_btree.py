"""Unit tests for repro.storage.btree."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.storage.btree import BPlusTree


def entries_for(keys: list) -> list:
    return [((key,), f"payload-{key}".encode()) for key in keys]


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load([], page_size=256)
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.validate()

    def test_single_entry(self):
        tree = BPlusTree.bulk_load(entries_for([5]), page_size=256)
        assert len(tree) == 1
        assert tree.search((5,)) == [b"payload-5"]
        tree.validate()

    def test_sorts_unsorted_input(self):
        keys = [9, 3, 7, 1, 5]
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=256)
        assert [k for k, _ in tree.items()] == [(1,), (3,), (5,), (7,), (9,)]
        tree.validate()

    def test_presorted_flag_accepts_sorted(self):
        tree = BPlusTree.bulk_load(entries_for([1, 2, 3]), page_size=256,
                                   presorted=True)
        tree.validate()

    def test_presorted_flag_rejects_unsorted(self):
        with pytest.raises(IndexError_):
            BPlusTree.bulk_load(entries_for([2, 1]), page_size=256,
                                presorted=True)

    def test_many_entries_multiple_levels(self):
        keys = list(range(2000))
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=256,
                                   max_fanout=8)
        assert len(tree) == 2000
        assert tree.height >= 3
        assert [k for k, _ in tree.items()] == [(k,) for k in keys]
        tree.validate()

    def test_fill_factor_spreads_leaves(self):
        keys = list(range(500))
        full = BPlusTree.bulk_load(entries_for(keys), page_size=512)
        half = BPlusTree.bulk_load(entries_for(keys), page_size=512,
                                   fill_factor=0.5)
        assert half.num_leaf_pages > full.num_leaf_pages
        half.validate()

    def test_bad_fill_factor(self):
        with pytest.raises(IndexError_):
            BPlusTree.bulk_load([], fill_factor=0.0)
        with pytest.raises(IndexError_):
            BPlusTree.bulk_load([], fill_factor=1.5)

    def test_duplicates_preserved(self):
        keys = [1, 2, 2, 2, 3]
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=256)
        assert len(tree.search((2,))) == 3
        tree.validate()


class TestInsert:
    def test_sequential_inserts(self):
        tree = BPlusTree(page_size=256, max_fanout=4)
        for key in range(300):
            tree.insert((key,), f"v{key}".encode())
        assert len(tree) == 300
        assert [k for k, _ in tree.items()] == [(k,) for k in range(300)]
        tree.validate()

    def test_reverse_inserts(self):
        tree = BPlusTree(page_size=256, max_fanout=4)
        for key in reversed(range(300)):
            tree.insert((key,), f"v{key}".encode())
        assert [k for k, _ in tree.items()] == [(k,) for k in range(300)]
        tree.validate()

    def test_random_inserts_match_sorted(self, rng: np.random.Generator):
        keys = [int(k) for k in rng.integers(0, 10_000, size=1500)]
        tree = BPlusTree(page_size=256, max_fanout=6)
        for key in keys:
            tree.insert((key,), b"x")
        assert [k for k, _ in tree.items()] == [(k,) for k in sorted(keys)]
        tree.validate()

    def test_insert_into_bulk_loaded(self):
        tree = BPlusTree.bulk_load(entries_for(range(0, 100, 2)),
                                   page_size=256, max_fanout=4)
        for key in range(1, 100, 2):
            tree.insert((key,), b"odd")
        assert [k for k, _ in tree.items()] == [(k,) for k in range(100)]
        tree.validate()

    def test_heavy_duplicates(self):
        tree = BPlusTree(page_size=256, max_fanout=4)
        for _ in range(500):
            tree.insert((42,), b"same")
        assert len(tree.search((42,))) == 500
        tree.validate()

    def test_record_too_large(self):
        tree = BPlusTree(page_size=128)
        with pytest.raises(IndexError_):
            tree.insert((1,), b"z" * 200)

    def test_variable_size_records(self, rng: np.random.Generator):
        tree = BPlusTree(page_size=256, max_fanout=5)
        for i in range(400):
            size = int(rng.integers(1, 100))
            tree.insert((int(rng.integers(0, 50)),), bytes(size))
        tree.validate()


class TestSearch:
    def test_point_lookup(self):
        tree = BPlusTree.bulk_load(entries_for(range(100)), page_size=256,
                                   max_fanout=4)
        assert tree.search((37,)) == [b"payload-37"]
        assert tree.search((1000,)) == []

    def test_duplicates_spanning_leaves(self):
        keys = [1] * 5 + [2] * 200 + [3] * 5
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=128,
                                   max_fanout=4)
        assert len(tree.search((2,))) == 200
        assert len(tree.search((1,))) == 5
        assert len(tree.search((3,))) == 5

    def test_empty_tree_search(self):
        tree = BPlusTree(page_size=256)
        assert tree.search((1,)) == []


class TestRangeScan:
    def test_full_scan(self):
        tree = BPlusTree.bulk_load(entries_for(range(50)), page_size=256,
                                   max_fanout=4)
        assert len(list(tree.range_scan())) == 50

    def test_bounded_scan(self):
        tree = BPlusTree.bulk_load(entries_for(range(100)), page_size=256,
                                   max_fanout=4)
        result = [k[0] for k, _ in tree.range_scan((10,), (20,))]
        assert result == list(range(10, 21))

    def test_open_ended_scans(self):
        tree = BPlusTree.bulk_load(entries_for(range(20)), page_size=256)
        low = [k[0] for k, _ in tree.range_scan(lo=(15,))]
        assert low == list(range(15, 20))
        high = [k[0] for k, _ in tree.range_scan(hi=(4,))]
        assert high == list(range(5))

    def test_scan_missing_bounds(self):
        tree = BPlusTree.bulk_load(entries_for([1, 5, 9]), page_size=256)
        assert [k[0] for k, _ in tree.range_scan((2,), (8,))] == [5]


class TestPhysicalViews:
    def test_leaf_pages_hold_all_records(self):
        keys = list(range(300))
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=256,
                                   max_fanout=4)
        from_pages = []
        for page in tree.leaf_pages():
            from_pages.extend(page.records())
        assert from_pages == [record for _, record in tree.items()]

    def test_leaf_byte_accounting(self):
        keys = list(range(100))
        tree = BPlusTree.bulk_load(entries_for(keys), page_size=256)
        expected = sum(len(record) for _, record in tree.items())
        assert tree.leaf_payload_bytes == expected
        assert tree.leaf_physical_bytes == tree.num_leaf_pages * 256

    def test_leaf_pages_within_capacity(self):
        tree = BPlusTree.bulk_load(entries_for(range(500)), page_size=128,
                                   max_fanout=4)
        for page in tree.leaf_pages():
            assert page.used_bytes <= 128

    def test_fanout_bounds(self):
        with pytest.raises(IndexError_):
            BPlusTree(max_fanout=2)
