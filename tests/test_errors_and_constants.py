"""Unit tests for the exception hierarchy and engine constants."""

import pytest

from repro import constants
from repro.errors import (AdvisorError, CompressionError, EncodingError,
                          EstimationError, ExperimentError, PageError,
                          PageFormatError, PageFullError, ReproError,
                          SamplingError, SchemaError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        SchemaError, EncodingError, PageError, PageFullError,
        PageFormatError, CompressionError, SamplingError,
        EstimationError, AdvisorError, ExperimentError])
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_page_errors_nest(self):
        assert issubclass(PageFullError, PageError)
        assert issubclass(PageFormatError, PageError)

    def test_page_full_carries_context(self):
        error = PageFullError("full", record_bytes=100, free_bytes=10)
        assert error.record_bytes == 100
        assert error.free_bytes == 10

    def test_record_not_found_is_lookup_error(self):
        from repro.errors import RecordNotFoundError

        assert issubclass(RecordNotFoundError, LookupError)
        assert issubclass(RecordNotFoundError, ReproError)


class TestConstants:
    def test_page_layout_consistent(self):
        assert constants.PAGE_HEADER_SIZE == 16
        assert constants.SLOT_SIZE == 4
        assert constants.MIN_PAGE_SIZE > \
            constants.PAGE_HEADER_SIZE + constants.SLOT_SIZE

    def test_default_page_size_is_8k(self):
        """SQL Server pages, the system whose estimator the paper
        describes."""
        assert constants.DEFAULT_PAGE_SIZE == 8192

    def test_pad_byte_is_blank(self):
        assert constants.PAD_BYTE == b" "

    def test_pointer_default_covers_64k_entries(self):
        assert constants.DEFAULT_POINTER_BYTES == 2

    def test_fill_factor_full(self):
        assert constants.DEFAULT_FILL_FACTOR == 1.0
