"""Unit tests for repro.workloads.strings."""

import pytest

from repro.errors import ExperimentError
from repro.storage.types import CharType
from repro.workloads.strings import (comment_strings, distinct_strings,
                                     fixed_length_strings, prefixed_names,
                                     zero_padded_ids)


class TestDistinctStrings:
    def test_count_and_distinctness(self):
        values = distinct_strings(500, 20, seed=1)
        assert len(values) == 500
        assert len(set(values)) == 500

    def test_all_fit_the_column(self):
        dtype = CharType(20)
        for value in distinct_strings(100, 20, seed=2):
            dtype.validate(value)

    def test_length_range_respected(self):
        values = distinct_strings(200, 20, min_len=5, max_len=10, seed=3)
        assert all(5 <= len(v) <= 10 for v in values)

    def test_no_trailing_blanks(self):
        values = distinct_strings(100, 20, seed=4)
        assert all(v == v.rstrip(" ") for v in values)

    def test_too_many_for_width_rejected(self):
        with pytest.raises(ExperimentError):
            distinct_strings(37, 1)

    def test_empty_range_rejected(self):
        with pytest.raises(ExperimentError):
            distinct_strings(10, 20, min_len=15, max_len=5)

    def test_reproducible(self):
        assert distinct_strings(50, 16, seed=7) == \
            distinct_strings(50, 16, seed=7)


class TestFixedLengthStrings:
    def test_exact_length(self):
        values = fixed_length_strings(100, 20, 12)
        assert all(len(v) == 12 for v in values)
        assert len(set(values)) == 100

    def test_length_bounds(self):
        with pytest.raises(ExperimentError):
            fixed_length_strings(10, 20, 0)
        with pytest.raises(ExperimentError):
            fixed_length_strings(10, 20, 25)

    def test_too_short_for_ids_rejected(self):
        with pytest.raises(ExperimentError):
            fixed_length_strings(10_000, 20, 2)


class TestZeroPaddedIds:
    def test_shape(self):
        values = zero_padded_ids(100, 20, width=12)
        assert all(len(v) == 12 for v in values)
        assert values[5] == "000000000005"
        assert len(set(values)) == 100

    def test_leading_zero_runs_exist(self):
        values = zero_padded_ids(10, 20, width=12)
        assert all(v.startswith("0" * 8) for v in values)

    def test_default_width_is_k(self):
        values = zero_padded_ids(5, 8)
        assert all(len(v) == 8 for v in values)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            zero_padded_ids(1000, 20, width=2)
        with pytest.raises(ExperimentError):
            zero_padded_ids(5, 8, width=9)


class TestPrefixedNames:
    def test_common_prefix(self):
        values = prefixed_names(50, 24, prefix="SKU-")
        assert all(v.startswith("SKU-") for v in values)
        assert len(set(values)) == 50

    def test_prefix_too_long_rejected(self):
        with pytest.raises(ExperimentError):
            prefixed_names(100, 8, prefix="WAREHOUSE-")


class TestCommentStrings:
    def test_distinct_and_fitting(self):
        dtype = CharType(60)
        values = comment_strings(200, 60, seed=5)
        assert len(set(values)) == 200
        for value in values:
            dtype.validate(value)

    def test_interior_blanks_no_trailing(self):
        values = comment_strings(100, 60, seed=6)
        assert any(" " in v for v in values)
        assert all(v == v.rstrip(" ") for v in values)

    def test_bad_word_length(self):
        with pytest.raises(ExperimentError):
            comment_strings(10, 10, word_length=10)
