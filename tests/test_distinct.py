"""Unit tests for repro.core.distinct."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sampling.rng import make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.storage.types import CharType
from repro.core.cf_models import ColumnHistogram
from repro.core.distinct import (DISTINCT_ESTIMATORS, Chao84, GEE,
                                 SampleDistinct, Shlosser,
                                 dictionary_cf_from_distinct)


def freqs_of(counts: list[int]) -> dict[int, int]:
    """Frequency-of-frequencies of an explicit count vector."""
    out: dict[int, int] = {}
    for count in counts:
        out[count] = out.get(count, 0) + 1
    return out


class TestValidation:
    @pytest.mark.parametrize("estimator", DISTINCT_ESTIMATORS.values(),
                             ids=list(DISTINCT_ESTIMATORS))
    def test_inconsistent_freqs_rejected(self, estimator):
        with pytest.raises(EstimationError):
            estimator.estimate({1: 5}, r=3, n=100)  # sums to 5, r=3

    @pytest.mark.parametrize("estimator", DISTINCT_ESTIMATORS.values(),
                             ids=list(DISTINCT_ESTIMATORS))
    def test_bad_sizes_rejected(self, estimator):
        with pytest.raises(EstimationError):
            estimator.estimate({1: 1}, r=1, n=0)
        with pytest.raises(EstimationError):
            estimator.estimate({1: 10}, r=10, n=5)

    def test_empty_freqs_rejected(self):
        with pytest.raises(EstimationError):
            SampleDistinct().estimate({}, r=1, n=10)


class TestSampleDistinct:
    def test_scale_up(self):
        # d' = 4 distinct in a 10-row sample from 100 rows -> 40.
        freqs = freqs_of([4, 3, 2, 1])
        assert SampleDistinct().estimate(freqs, r=10, n=100) == 40.0

    def test_full_sample(self):
        freqs = freqs_of([5, 5])
        assert SampleDistinct().estimate(freqs, r=10, n=10) == 2.0


class TestChao84:
    def test_with_doubletons(self):
        freqs = freqs_of([1, 1, 1, 2, 2, 3])  # f1=3, f2=2, d'=6
        expected = 6 + 9 / 4
        assert Chao84().estimate(freqs, r=10, n=1000) == \
            pytest.approx(expected)

    def test_without_doubletons(self):
        freqs = freqs_of([1, 1, 1, 3])  # f1=3, f2=0, d'=4
        expected = 4 + 3 * 2 / 2
        assert Chao84().estimate(freqs, r=6, n=1000) == \
            pytest.approx(expected)

    def test_capped_at_n(self):
        freqs = freqs_of([1] * 10)
        assert Chao84().estimate(freqs, r=10, n=12) <= 12


class TestGEE:
    def test_formula(self):
        freqs = freqs_of([1, 1, 2, 5])  # f1=2, others=2, d'=4
        n, r = 10_000, 9
        expected = np.sqrt(n / r) * 2 + 2
        assert GEE().estimate(freqs, r=r, n=n) == pytest.approx(expected)

    def test_never_below_observed(self):
        freqs = freqs_of([2, 2, 2])
        assert GEE().estimate(freqs, r=6, n=1000) >= 3

    def test_capped_at_n(self):
        freqs = freqs_of([1] * 100)
        assert GEE().estimate(freqs, r=100, n=150) <= 150


class TestShlosser:
    def test_no_singletons_returns_observed(self):
        freqs = freqs_of([2, 2, 4])
        assert Shlosser().estimate(freqs, r=8, n=1000) == \
            pytest.approx(3.0)

    def test_adds_mass_for_singletons(self):
        freqs = freqs_of([1, 1, 1, 1, 6])
        estimate = Shlosser().estimate(freqs, r=10, n=10_000)
        assert estimate > 5

    def test_full_sample_returns_observed(self):
        freqs = freqs_of([5, 5])
        assert Shlosser().estimate(freqs, r=10, n=10) == 2.0


class TestAccuracyOnKnownPopulations:
    """Estimators should rank sensibly on an easy uniform population."""

    def test_uniform_population(self):
        dtype = CharType(8)
        d_true = 200
        histogram = ColumnHistogram(
            dtype, [f"v{i}" for i in range(d_true)], [50] * d_true)
        sampler = WithReplacementSampler()
        rng = make_rng(17)
        sample = sampler.sample_histogram(histogram, 1000, rng)
        freqs = sample.frequency_of_frequencies()
        for name, estimator in DISTINCT_ESTIMATORS.items():
            estimate = estimator.estimate(freqs, sample.n, histogram.n)
            ratio = max(estimate / d_true, d_true / estimate)
            assert ratio < 60, f"{name} is wildly off: {estimate}"

    def test_estimate_from_histogram_convenience(self):
        dtype = CharType(8)
        histogram = ColumnHistogram(dtype, ["a", "b"], [5, 5])
        estimate = SampleDistinct().estimate_from_histogram(histogram, 20)
        assert estimate == 2 * 20 / 10


class TestDictionaryCFBridge:
    def test_formula(self):
        assert dictionary_cf_from_distinct(50, n=100, k=20, p=2) == \
            pytest.approx(0.5 + 0.1)

    def test_caps_at_n(self):
        capped = dictionary_cf_from_distinct(500, n=100, k=20, p=2)
        assert capped == pytest.approx(1.0 + 0.1)

    def test_validation(self):
        with pytest.raises(EstimationError):
            dictionary_cf_from_distinct(5, n=0, k=20, p=2)
        with pytest.raises(EstimationError):
            dictionary_cf_from_distinct(-1, n=10, k=20, p=2)
