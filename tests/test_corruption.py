"""Failure injection: corrupted compressed blobs must fail loudly.

A storage engine must never return silently wrong data. Each test
applies a *targeted* corruption to a structural field of a compressed
blob (lengths, counts, pointers) and checks the decompressor raises
:class:`CompressionError` instead of fabricating records.
"""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import single_char_schema
from repro.compression.base import CompressedBlock, CompressedColumn
from repro.compression.dictionary import DictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.compression.page_compression import PageCompression
from repro.compression.prefix import PrefixCompression
from repro.compression.rle import RunLengthEncoding

SCHEMA = single_char_schema(20)


def records_of(values: list[str]) -> list[bytes]:
    return [encode_record(SCHEMA, (value,)) for value in values]


def rebuild(block: CompressedBlock, blob: bytes) -> CompressedBlock:
    """A copy of ``block`` with its single column blob replaced."""
    return CompressedBlock(
        algorithm=block.algorithm, row_count=block.row_count,
        columns=(CompressedColumn(blob, block.columns[0].payload_size),))


class TestNullSuppressionCorruption:
    def test_truncated_body(self):
        algorithm = NullSuppression()
        block = algorithm.compress(records_of(["abcdef"]), SCHEMA)
        broken = rebuild(block, block.columns[0].blob[:-2])
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)

    def test_inflated_length_header(self):
        algorithm = NullSuppression()
        block = algorithm.compress(records_of(["abc"]), SCHEMA)
        blob = bytearray(block.columns[0].blob)
        blob[0] = 200  # claims a 200-byte body that is not there
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)

    def test_trailing_garbage(self):
        algorithm = NullSuppression()
        block = algorithm.compress(records_of(["abc"]), SCHEMA)
        broken = rebuild(block, block.columns[0].blob + b"JUNK")
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)

    def test_bad_run_token(self):
        algorithm = NullSuppression(mode="runs")
        block = algorithm.compress(records_of(["0000000abc"]), SCHEMA)
        blob = bytearray(block.columns[0].blob)
        # Byte 1 is the ESC marker, byte 2 the token type: corrupt it.
        assert blob[1] == 0x1B
        blob[2] = 99
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)

    def test_column_count_mismatch(self):
        algorithm = NullSuppression()
        block = algorithm.compress(records_of(["abc"]), SCHEMA)
        two_columns = CompressedBlock(
            algorithm=block.algorithm, row_count=1,
            columns=block.columns + block.columns)
        with pytest.raises(CompressionError):
            algorithm.decompress(two_columns, SCHEMA)


class TestDictionaryCorruption:
    def test_pointer_out_of_range(self):
        algorithm = DictionaryCompression()
        block = algorithm.compress(records_of(["aa", "bb", "aa"]),
                                   SCHEMA)
        blob = bytearray(block.columns[0].blob)
        blob[-1] = 0xFF  # pointer 0xNNFF far beyond 2 entries
        blob[-2] = 0xFF
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)

    def test_truncated_dictionary_entry(self):
        algorithm = DictionaryCompression()
        block = algorithm.compress(records_of(["aa", "bb"]), SCHEMA)
        broken = rebuild(block, block.columns[0].blob[:10])
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)

    def test_header_too_short(self):
        algorithm = DictionaryCompression()
        block = algorithm.compress(records_of(["aa"]), SCHEMA)
        broken = rebuild(block, b"\x00\x01")
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)

    def test_trailing_garbage(self):
        algorithm = DictionaryCompression()
        block = algorithm.compress(records_of(["aa", "bb"]), SCHEMA)
        broken = rebuild(block, block.columns[0].blob + b"??")
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)


class TestRLECorruption:
    def test_run_total_mismatch(self):
        algorithm = RunLengthEncoding()
        block = algorithm.compress(records_of(["a", "a", "b"]), SCHEMA)
        blob = bytearray(block.columns[0].blob)
        # First run's 4-byte count starts after the 4-byte run_count.
        blob[7] = 9  # now expands to 10 rows, row_count says 3
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)

    def test_truncated_value(self):
        algorithm = RunLengthEncoding()
        block = algorithm.compress(records_of(["abcdef"] * 3), SCHEMA)
        broken = rebuild(block, block.columns[0].blob[:-3])
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)


class TestPrefixCorruption:
    def test_bad_mode_byte(self):
        algorithm = PrefixCompression()
        block = algorithm.compress(records_of(["pre-a", "pre-b"]),
                                   SCHEMA)
        blob = bytearray(block.columns[0].blob)
        blob[0] = 7
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)

    def test_truncated_prefix(self):
        algorithm = PrefixCompression()
        block = algorithm.compress(records_of(["shared-a", "shared-b"]),
                                   SCHEMA)
        broken = rebuild(block, block.columns[0].blob[:3])
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)


class TestPageCompressionCorruption:
    def test_empty_blob(self):
        algorithm = PageCompression()
        block = algorithm.compress(records_of(["x"]), SCHEMA)
        broken = rebuild(block, b"")
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, SCHEMA)

    def test_pointer_out_of_range(self):
        algorithm = PageCompression()
        block = algorithm.compress(records_of(["px-a", "px-b", "px-a"]),
                                   SCHEMA)
        blob = bytearray(block.columns[0].blob)
        blob[-1] = 0xFF
        blob[-2] = 0xFF
        with pytest.raises(CompressionError):
            algorithm.decompress(rebuild(block, bytes(blob)), SCHEMA)
