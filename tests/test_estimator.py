"""Unit tests for repro.core.estimator."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.storage.types import CharType, VarCharType
from repro.core.cf_models import ColumnHistogram
from repro.core.estimator import (DistinctPlugInEstimator,
                                  HistogramCFEstimator)
from repro.core.samplecf import SampleCF
from repro.compression.global_dictionary import GlobalDictionaryCompression


@pytest.fixture
def histogram() -> ColumnHistogram:
    values = [f"v{i:03d}" for i in range(60)]
    counts = np.arange(1, 61) * 3
    return ColumnHistogram(CharType(20), values, counts)


class TestDistinctPlugIn:
    def test_by_name(self, histogram):
        estimator = DistinctPlugInEstimator("chao84")
        value = estimator.estimate_histogram(histogram, 0.2, seed=1)
        assert 0 < value <= 1.0 + 2 / 20

    def test_unknown_name_rejected(self):
        with pytest.raises(EstimationError):
            DistinctPlugInEstimator("hyperloglog")

    def test_bad_pointer_rejected(self):
        with pytest.raises(EstimationError):
            DistinctPlugInEstimator("gee", pointer_bytes=0)

    def test_scale_up_matches_samplecf(self, histogram):
        """The scale-up plug-in IS SampleCF's dictionary estimate."""
        plug_in = DistinctPlugInEstimator("scale_up")
        samplecf = SampleCF(GlobalDictionaryCompression())
        for seed in range(5):
            a = plug_in.estimate_histogram(histogram, 0.1, seed=seed)
            b = samplecf.estimate_histogram(histogram, 0.1,
                                            seed=seed).estimate
            assert a == pytest.approx(b)

    def test_variable_width_rejected(self):
        histogram = ColumnHistogram(VarCharType(20), ["a", "bb"], [1, 1])
        estimator = DistinctPlugInEstimator("gee")
        with pytest.raises(EstimationError):
            estimator.estimate_histogram(histogram, 0.5)

    def test_name_attribute(self):
        assert DistinctPlugInEstimator("gee").name == "dict_cf[gee]"

    def test_protocol_conformance(self, histogram):
        estimator = DistinctPlugInEstimator("shlosser")
        assert isinstance(estimator, HistogramCFEstimator)
        assert isinstance(SampleCF(GlobalDictionaryCompression()),
                          HistogramCFEstimator)

    def test_reproducible(self, histogram):
        estimator = DistinctPlugInEstimator("gee")
        assert estimator.estimate_histogram(histogram, 0.1, seed=3) == \
            estimator.estimate_histogram(histogram, 0.1, seed=3)
