"""Unit and integration tests for repro.core.multicolumn."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.storage.index import IndexKind
from repro.storage.types import CharType, VarCharType
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.core.multicolumn import (MultiColumnEstimate, TableHistogram,
                                    multicolumn_cf, sample_multicolumn_cf,
                                    table_histogram_from_table)
from repro.core.samplecf import true_cf_table
from repro.workloads.generators import make_multicolumn_table

PAGE = 1024


def two_column_histogram() -> TableHistogram:
    first = ColumnHistogram(CharType(10),
                            [f"s{i}" for i in range(5)], [200] * 5)
    second = ColumnHistogram(CharType(20),
                             [f"name{i:03d}" for i in range(100)],
                             [10] * 100)
    return TableHistogram([first, second], names=["status", "name"])


class TestTableHistogram:
    def test_basic_shape(self):
        table = two_column_histogram()
        assert table.n == 1000
        assert table.record_bytes == 30
        assert table.total_bytes == 30_000
        assert table.names == ("status", "name")

    def test_row_count_mismatch_rejected(self):
        first = ColumnHistogram(CharType(4), ["a"], [10])
        second = ColumnHistogram(CharType(4), ["b"], [20])
        with pytest.raises(EstimationError):
            TableHistogram([first, second])

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            TableHistogram([])

    def test_variable_width_rejected(self):
        histogram = ColumnHistogram(VarCharType(8), ["a"], [5])
        with pytest.raises(EstimationError):
            TableHistogram([histogram])

    def test_name_count_mismatch_rejected(self):
        histogram = ColumnHistogram(CharType(4), ["a"], [5])
        with pytest.raises(EstimationError):
            TableHistogram([histogram], names=["x", "y"])

    def test_default_names(self):
        histogram = ColumnHistogram(CharType(4), ["a"], [5])
        assert TableHistogram([histogram]).names == ("c0",)


class TestMulticolumnCF:
    def test_ns_is_weighted_column_average(self):
        table = two_column_histogram()
        value = multicolumn_cf(table, NullSuppression(), page_size=PAGE)
        first_cf = ns_cf(table.columns[0])
        second_cf = ns_cf(table.columns[1])
        expected = (first_cf * 10_000 + second_cf * 20_000) / 30_000
        assert value == pytest.approx(expected)

    def test_accepts_algorithm_names(self):
        table = two_column_histogram()
        assert multicolumn_cf(table, "null_suppression") == \
            multicolumn_cf(table, NullSuppression())

    def test_matches_engine_exactly_layout_free(self):
        """NS and global dictionary are layout-free: the multi-column
        model must equal the engine byte-for-byte."""
        table = make_multicolumn_table(
            "t", 2000, [("status", 10, 5), ("name", 20, 150)],
            page_size=PAGE, seed=31)
        histogram = table_histogram_from_table(table,
                                               ["status", "name"])
        for algorithm in (NullSuppression(),
                          GlobalDictionaryCompression()):
            engine = true_cf_table(table, ["status", "name"], algorithm,
                                   kind=IndexKind.CLUSTERED,
                                   page_size=PAGE)
            model = multicolumn_cf(histogram, algorithm, page_size=PAGE)
            assert engine == pytest.approx(model, abs=1e-12), \
                algorithm.name

    def test_paged_dictionary_upper_approximation(self):
        """For trailing columns the sorted-runs assumption makes the
        paged model a lower bound of the engine's page-dictionary size
        (scattered values repeat in more pages than contiguous ones)."""
        from repro.compression.dictionary import DictionaryCompression

        table = make_multicolumn_table(
            "t", 2000, [("status", 10, 5), ("name", 20, 150)],
            page_size=PAGE, seed=37)
        histogram = table_histogram_from_table(table,
                                               ["status", "name"])
        engine = true_cf_table(table, ["status", "name"],
                               DictionaryCompression(),
                               kind=IndexKind.CLUSTERED, page_size=PAGE)
        model = multicolumn_cf(histogram, DictionaryCompression(),
                               page_size=PAGE)
        assert model <= engine + 1e-12
        # The trailing column scatters across pages, inflating the
        # engine's per-page dictionaries; still the same order.
        assert engine / model < 2.0


class TestSampleMulticolumnCF:
    def test_estimate_structure(self):
        table = two_column_histogram()
        estimate = sample_multicolumn_cf(table, 0.2, NullSuppression(),
                                         seed=1)
        assert isinstance(estimate, MultiColumnEstimate)
        assert estimate.sample_rows == 200
        assert set(estimate.per_column) == {"status", "name"}
        assert 0 < estimate.estimate < 1.5

    def test_tracks_truth(self):
        table = two_column_histogram()
        truth = multicolumn_cf(table, NullSuppression())
        estimates = [
            sample_multicolumn_cf(table, 0.2, NullSuppression(),
                                  seed=s).estimate
            for s in range(50)]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.02)

    def test_full_sample_without_replacement_exact(self):
        from repro.sampling.row_samplers import WithoutReplacementSampler

        table = two_column_histogram()
        estimate = sample_multicolumn_cf(
            table, 1.0, NullSuppression(),
            sampler=WithoutReplacementSampler(), seed=2)
        assert estimate.estimate == pytest.approx(
            multicolumn_cf(table, NullSuppression()))

    def test_reproducible(self):
        table = two_column_histogram()
        first = sample_multicolumn_cf(table, 0.1, "null_suppression",
                                      seed=5)
        second = sample_multicolumn_cf(table, 0.1, "null_suppression",
                                       seed=5)
        assert first.estimate == second.estimate

    def test_matches_storage_path_mean(self):
        """Multi-column histogram SampleCF agrees with the engine's
        storage-path SampleCF in expectation."""
        from repro.core.samplecf import SampleCF

        table = make_multicolumn_table(
            "t", 1500, [("status", 10, 5), ("name", 20, 100)],
            page_size=PAGE, seed=41)
        histogram = table_histogram_from_table(table,
                                               ["status", "name"])
        storage = SampleCF(NullSuppression(), page_size=PAGE)
        storage_mean = np.mean([
            storage.estimate_table(table, 0.1, ["status", "name"],
                                   seed=s).estimate
            for s in range(30)])
        model_mean = np.mean([
            sample_multicolumn_cf(histogram, 0.1, NullSuppression(),
                                  page_size=PAGE, seed=100 + s).estimate
            for s in range(30)])
        assert storage_mean == pytest.approx(model_mean, abs=0.02)
