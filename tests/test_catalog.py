"""Unit tests for repro.storage.catalog."""

import pytest

from repro.errors import SchemaError
from repro.storage.catalog import CompressionSavingsReport, Database
from repro.storage.index import IndexKind
from repro.storage.schema import Schema
from repro.workloads.generators import make_multicolumn_table

PAGE = 1024


@pytest.fixture
def database() -> Database:
    db = Database("warehouse", page_size=PAGE)
    table = make_multicolumn_table(
        "orders", 2000, [("status", 10, 5), ("customer", 24, 200)],
        page_size=PAGE, seed=21)
    db.attach(table)
    return db


class TestDDL:
    def test_create_with_specs(self):
        db = Database("d", page_size=PAGE)
        table = db.create_table("t", status="char(10)", qty="integer")
        assert table.schema.names == ("status", "qty")
        assert db.table("t") is table

    def test_create_with_schema(self):
        db = Database("d", page_size=PAGE)
        schema = Schema.of(a="char(4)")
        assert db.create_table("t", schema).schema is schema

    def test_create_requires_exactly_one_source(self):
        db = Database("d", page_size=PAGE)
        with pytest.raises(SchemaError):
            db.create_table("t")
        with pytest.raises(SchemaError):
            db.create_table("t", Schema.of(a="char(4)"), b="integer")

    def test_duplicate_rejected(self, database):
        with pytest.raises(SchemaError):
            database.create_table("orders", x="char(4)")
        with pytest.raises(SchemaError):
            database.attach(database.table("orders"))

    def test_drop(self, database):
        database.drop_table("orders")
        with pytest.raises(SchemaError):
            database.table("orders")
        with pytest.raises(SchemaError):
            database.drop_table("orders")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Database("")


class TestEstimateSavings:
    def test_nonclustered_report(self, database):
        report = database.estimate_compression_savings(
            "orders", ["status"], algorithm="page", fraction=0.05,
            seed=1)
        assert isinstance(report, CompressionSavingsReport)
        assert report.current_size_bytes == 2000 * (10 + 8)
        assert 0 < report.estimated_cf <= 1.5
        assert report.estimated_compressed_bytes == pytest.approx(
            report.estimated_cf * report.current_size_bytes)
        assert report.estimated_savings_bytes == pytest.approx(
            report.current_size_bytes
            - report.estimated_compressed_bytes)

    def test_clustered_report(self, database):
        report = database.estimate_compression_savings(
            "orders", ["status"], algorithm="null_suppression",
            fraction=0.05, kind=IndexKind.CLUSTERED, seed=2)
        assert report.current_size_bytes == 2000 * (10 + 24)
        assert report.kind is IndexKind.CLUSTERED

    def test_describe_readable(self, database):
        report = database.estimate_compression_savings(
            "orders", ["customer"], fraction=0.05, seed=3)
        text = report.describe()
        assert "orders(customer)" in text
        assert "estimated CF" in text

    def test_reproducible(self, database):
        first = database.estimate_compression_savings(
            "orders", ["status"], fraction=0.05, seed=7)
        second = database.estimate_compression_savings(
            "orders", ["status"], fraction=0.05, seed=7)
        assert first.estimated_cf == second.estimated_cf

    def test_unknown_table(self, database):
        with pytest.raises(SchemaError):
            database.estimate_compression_savings("ghost", ["a"])


class TestPersistence:
    def test_save_and_load(self, database, tmp_path):
        database.save(tmp_path / "db")
        restored = Database.load("warehouse", tmp_path / "db",
                                 page_size=PAGE)
        assert sorted(restored.tables) == ["orders"]
        original = database.table("orders")
        loaded = restored.table("orders")
        assert list(loaded.rows()) == list(original.rows())

    def test_estimates_survive_reload(self, database, tmp_path):
        database.save(tmp_path / "db")
        restored = Database.load("warehouse", tmp_path / "db")
        before = database.estimate_compression_savings(
            "orders", ["status"], fraction=0.05, seed=11)
        after = restored.estimate_compression_savings(
            "orders", ["status"], fraction=0.05, seed=11)
        assert before.estimated_cf == after.estimated_cf

    def test_load_empty_directory(self, tmp_path):
        restored = Database.load("empty", tmp_path)
        assert restored.tables == {}
