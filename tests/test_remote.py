"""Unit tests for the remote plan executor's building blocks.

The determinism property suite proves the end-to-end contract (remote
results == serial results, faults included); this file pins the pieces
in isolation: the length-prefixed frame protocol, the per-unit cost
model, LPT vs round-robin shard quality, worker-address parsing, and
the executor registry / environment wiring.
"""

from __future__ import annotations

import os
import socket
import threading

import numpy as np
import pytest

from repro.engine import remote
from repro.engine.engine import EstimationEngine
from repro.engine.executors import make_executor
from repro.engine.remote import (ALGORITHM_WEIGHTS, RemotePlanExecutor,
                                 UnitCostModel, lpt_assign, makespan,
                                 parse_worker_addresses,
                                 round_robin_assign, start_worker_thread)
from repro.engine.requests import EstimationRequest
from repro.engine.units import plan_units
from repro.errors import EstimationError
from repro.workloads.generators import make_histogram, make_table


def planned_units(trials=3, fraction=0.05, algorithm="null_suppression"):
    table = make_table(n=800, d=30, k=12, seed=5, page_size=1024)
    request = EstimationRequest(table=table, columns=("a",),
                                algorithm=algorithm, fraction=fraction,
                                trials=trials, page_size=512)
    engine = EstimationEngine(seed=99)
    return list(plan_units(engine.plan([request])))


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
class TestFrames:
    def roundtrip(self, message):
        left, right = socket.socketpair()
        try:
            remote.send_frame(left, message)
            return remote.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_roundtrip_objects(self):
        for message in (("ping",), ("run", [0, 1, 2]),
                        {"nested": (b"\x00" * 100, None)}):
            assert self.roundtrip(message) == message

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert remote.recv_frame(right) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(remote._LENGTH.pack(1000) + b"short")
            left.close()
            with pytest.raises(ConnectionError):
                remote.recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(remote._LENGTH.pack(remote.MAX_FRAME_BYTES + 1))
            with pytest.raises(EstimationError):
                remote.recv_frame(right)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# Worker loop over a socketpair (no listener needed)
# ----------------------------------------------------------------------
class TestWorkerLoop:
    def serve_pair(self, state=None):
        client, server = socket.socketpair()
        state = state or remote.WorkerState()
        thread = threading.Thread(
            target=remote.handle_connection, args=(server, state),
            daemon=True)
        thread.start()
        return client, thread

    def ask(self, sock, message):
        remote.send_frame(sock, message)
        return remote.recv_frame(sock)

    def test_ping_install_run_shutdown(self):
        import pickle

        units = planned_units(trials=2)
        client, thread = self.serve_pair()
        try:
            kind, info = self.ask(client, ("ping",))
            assert kind == "pong" and info["pid"] == os.getpid()
            blob = pickle.dumps(list(enumerate(units)),
                                protocol=pickle.HIGHEST_PROTOCOL)
            kind, installed = self.ask(client, ("install", blob, None))
            assert (kind, installed) == ("installed", len(units))
            kind, rows, delta = self.ask(
                client, ("run", list(range(len(units)))))
            assert kind == "results"
            assert sorted(position for position, _, _ in rows) \
                == list(range(len(units)))
            assert all(seconds >= 0.0 for _, _, seconds in rows)
            assert delta["estimates_computed"] == len(units)
            assert self.ask(client, ("shutdown",)) == ("bye",)
        finally:
            client.close()
            thread.join(timeout=5)

    def test_run_unknown_position_fails(self):
        client, thread = self.serve_pair()
        try:
            reply = self.ask(client, ("run", [7]))
            assert reply[0] == "error"
        finally:
            client.close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestUnitCostModel:
    def test_cost_scales_with_fraction_and_algorithm(self):
        cheap = planned_units(fraction=0.02)[0]
        dear = planned_units(fraction=0.10)[0]
        assert UnitCostModel.predict(dear) > UnitCostModel.predict(cheap)
        ns = planned_units(algorithm="null_suppression")[0]
        runs = planned_units(algorithm="null_suppression_runs")[0]
        assert UnitCostModel.predict(runs) > UnitCostModel.predict(ns)

    def test_histogram_units_discounted(self):
        histogram = make_histogram(5000, 40, 12, seed=6)
        request = EstimationRequest(histogram=histogram,
                                    algorithm="null_suppression",
                                    fraction=0.05, trials=1)
        engine = EstimationEngine(seed=99)
        unit = list(plan_units(engine.plan([request])))[0]
        table_unit = planned_units(fraction=0.05)[0]
        assert UnitCostModel.predict(unit) < UnitCostModel.predict(
            table_unit)

    def test_observe_calibrates_seconds(self):
        model = UnitCostModel()
        unit = planned_units()[0]
        assert model.predict_seconds(unit) is None
        model.observe(unit, 0.5)
        first = model.predict_seconds(unit)
        assert first == pytest.approx(0.5, rel=1e-9)
        model.observe(unit, 1.5)
        drifted = model.predict_seconds(unit)
        assert 0.5 < drifted < 1.5  # EMA moved toward the new sample
        assert model.snapshot()  # non-empty calibration table

    def test_every_registered_algorithm_has_a_weight(self):
        from repro.compression.registry import list_algorithms

        for name in list_algorithms():
            assert name in ALGORITHM_WEIGHTS, name


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------
class TestScheduling:
    def test_lpt_balances_skewed_costs(self):
        costs = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        lpt = lpt_assign(costs, 2)
        rr = round_robin_assign(costs, 2)
        assert makespan(costs, lpt) < makespan(costs, rr)
        # LPT puts the giant unit alone-ish: its shard carries nothing
        # beyond what balance requires.
        assert makespan(costs, lpt) == 100.0

    def test_lpt_covers_all_units_exactly_once(self):
        rng = np.random.default_rng(3)
        costs = rng.uniform(0.5, 20.0, size=37).tolist()
        for shards in (1, 2, 5, 37, 50):
            assignment = lpt_assign(costs, shards)
            flat = sorted(index for shard in assignment
                          for index in shard)
            assert flat == list(range(len(costs)))

    def test_round_robin_covers_all_units(self):
        assignment = round_robin_assign([1.0] * 7, 3)
        flat = sorted(index for shard in assignment for index in shard)
        assert flat == list(range(7))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(EstimationError):
            RemotePlanExecutor(workers=[("127.0.0.1", 1)],
                               scheduler="fifo")


# ----------------------------------------------------------------------
# Address parsing and registry wiring
# ----------------------------------------------------------------------
class TestWiring:
    def test_parse_worker_addresses(self):
        assert parse_worker_addresses("hostA:7071,hostB:7072") \
            == [("hostA", 7071), ("hostB", 7072)]
        assert parse_worker_addresses([("x", 1), "y:2"]) \
            == [("x", 1), ("y", 2)]
        assert parse_worker_addresses("") == []

    def test_parse_rejects_garbage(self):
        for bad in ("hostA", "hostA:seven", ":7071"):
            with pytest.raises(EstimationError):
                parse_worker_addresses(bad)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(remote.REMOTE_WORKERS_ENV, "w1:9001,w2:9002")
        assert parse_worker_addresses(None) \
            == [("w1", 9001), ("w2", 9002)]
        monkeypatch.delenv(remote.REMOTE_WORKERS_ENV)
        assert parse_worker_addresses(None) == []

    def test_make_executor_remote(self):
        executor = make_executor("remote", workers="h:1,i:2")
        assert isinstance(executor, RemotePlanExecutor)
        assert executor.name == "remote"

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(EstimationError, match="remote"):
            make_executor("carrier-pigeon")


# ----------------------------------------------------------------------
# Executor end-to-end against in-process workers
# ----------------------------------------------------------------------
class TestRemoteExecutorSmall:
    def test_stats_and_identity_small_batch(self):
        from repro.engine.executors import SerialExecutor

        (address, shutdown) = start_worker_thread()
        try:
            table = make_table(n=600, d=25, k=10, seed=8, page_size=1024)
            requests = [EstimationRequest(
                table=table, columns=("a",), algorithm=name,
                fraction=0.05, trials=2, page_size=512)
                for name in ("null_suppression", "rle")]
            remote_engine = EstimationEngine(
                seed=4, executor=RemotePlanExecutor(workers=[address]))
            serial_engine = EstimationEngine(seed=4,
                                             executor=SerialExecutor())
            got = remote_engine.execute(requests)
            want = serial_engine.execute(requests)
            assert [r.values.tolist() for r in got.results] \
                == [r.values.tolist() for r in want.results]
            assert got.stats["remote_units"] == 4
            assert got.stats["remote_fallback_units"] == 0
        finally:
            shutdown()


class TestCircuitBreaker:
    """Cross-batch worker lifecycle: bury, skip, probe, rejoin.

    The executor keeps links and per-address breakers across run()
    calls; a worker that dies is buried through its breaker, and —
    the PR 9 satellite fix — a worker that *restarts* on the same
    address rejoins via the half-open probe instead of staying buried
    for the executor's lifetime.
    """

    @staticmethod
    def _worker_on(port, **kwargs):
        """serve() on a chosen port (0 = ephemeral); returns addr+stop."""
        box: dict = {}
        bound = threading.Event()
        stop = threading.Event()

        def ready(addr):
            box["addr"] = addr
            bound.set()

        thread = threading.Thread(
            target=remote.serve,
            kwargs={"port": port, "ready": ready,
                    "stop_event": stop, **kwargs},
            daemon=True)
        thread.start()
        assert bound.wait(timeout=10)

        def shutdown():
            stop.set()
            thread.join(timeout=5)

        return box["addr"], shutdown

    @staticmethod
    def _requests():
        table = make_table(n=600, d=25, k=10, seed=8, page_size=1024)
        return [EstimationRequest(
            table=table, columns=("a",), algorithm=name,
            fraction=0.05, trials=2, page_size=512)
            for name in ("null_suppression", "rle")]

    def _reference(self):
        from repro.engine.executors import SerialExecutor

        batch = EstimationEngine(
            seed=4, executor=SerialExecutor()).execute(self._requests())
        return [r.values.tolist() for r in batch.results]

    def test_restarted_worker_rejoins_via_probe(self):
        """Die between batches, restart on the same port, rejoin."""
        reference = self._reference()
        # fail_after_units=4: batch 1 (4 units) completes, batch 2's
        # first chunk kills the connection — death *between* batches
        # from the executor's point of view.
        address, shutdown = self._worker_on(0, fail_after_units=4)
        executor = RemotePlanExecutor(
            workers=[address], breaker_threshold=1,
            max_local_workers=2, connect_timeout=0.5)
        engine = EstimationEngine(seed=4, executor=executor)
        try:
            one = engine.execute(self._requests())
            assert one.stats["remote_units"] == 4
            assert [r.values.tolist() for r in one.results] == reference

            two = engine.execute(self._requests())  # worker dies here
            assert two.stats["remote_worker_failures"] == 1
            assert two.stats["remote_units"] == 0
            assert [r.values.tolist() for r in two.results] == reference
        finally:
            shutdown()
        # The worker restarts on the same address; the next batch's
        # half-open probe must re-connect() it, not skip it forever.
        address2, shutdown2 = self._worker_on(address[1])
        assert address2 == address
        try:
            three = engine.execute(self._requests())
            assert three.stats["breaker_probes"] == 1
            assert three.stats["breaker_reconnects"] == 1
            assert three.stats["remote_units"] == 4
            assert three.stats["remote_fallback_units"] == 0
            assert [r.values.tolist()
                    for r in three.results] == reference
        finally:
            shutdown2()
            executor.close()

    def test_open_breaker_skips_for_cooldown_batches(self):
        """cooldown=N: N batches skip the address without connecting."""
        reference = self._reference()
        address, shutdown = self._worker_on(0, fail_after_units=4)
        executor = RemotePlanExecutor(
            workers=[address], breaker_threshold=1, breaker_cooldown=1,
            max_local_workers=2, connect_timeout=0.5)
        engine = EstimationEngine(seed=4, executor=executor)
        try:
            engine.execute(self._requests())            # warm batch
            engine.execute(self._requests())            # death -> open
        finally:
            shutdown()
        address2, shutdown2 = self._worker_on(address[1])
        try:
            skip = engine.execute(self._requests())     # cooldown skip
            assert skip.stats["breaker_open_skips"] == 1
            assert skip.stats["remote_units"] == 0
            assert [r.values.tolist()
                    for r in skip.results] == reference
            probe = engine.execute(self._requests())    # the probe
            assert probe.stats["breaker_probes"] == 1
            assert probe.stats["breaker_reconnects"] == 1
            assert probe.stats["remote_units"] == 4
            assert [r.values.tolist()
                    for r in probe.results] == reference
        finally:
            shutdown2()
            executor.close()

    def test_unreachable_address_opens_breaker(self):
        """Connect failures count toward the threshold too."""
        address, shutdown = self._worker_on(0)
        shutdown()  # nothing listens any more
        executor = RemotePlanExecutor(
            workers=[address], breaker_threshold=2, breaker_cooldown=5,
            max_local_workers=2, connect_timeout=0.2)
        engine = EstimationEngine(seed=4, executor=executor)
        reference = self._reference()
        for expected_skips in (0, 0, 1):
            batch = engine.execute(self._requests())
            assert batch.stats["breaker_open_skips"] == expected_skips
            assert [r.values.tolist()
                    for r in batch.results] == reference
        executor.close()
