"""Unit tests for repro.storage.filestore."""

import io

import pytest

from repro.errors import PageFormatError, SchemaError
from repro.storage.filestore import (load_heap, load_table, save_heap,
                                     save_table)
from repro.storage.heap import HeapFile
from repro.storage.index import IndexKind
from repro.workloads.generators import make_multicolumn_table, make_table


class TestHeapPersistence:
    def test_roundtrip(self):
        heap = HeapFile(page_size=256)
        records = [f"record-{i:04d}".encode() for i in range(100)]
        heap.insert_many(records)
        buffer = io.BytesIO()
        save_heap(heap, buffer)
        buffer.seek(0)
        loaded = load_heap(buffer)
        assert loaded.page_size == 256
        assert loaded.num_records == 100
        assert list(loaded.records()) == records

    def test_empty_heap(self):
        heap = HeapFile(page_size=128)
        buffer = io.BytesIO()
        save_heap(heap, buffer)
        buffer.seek(0)
        loaded = load_heap(buffer)
        assert loaded.num_records == 0
        assert loaded.num_pages == 0

    def test_bad_magic_rejected(self):
        with pytest.raises(PageFormatError):
            load_heap(io.BytesIO(b"NOTAHEAP" + b"\x00" * 16))

    def test_truncated_rejected(self):
        heap = HeapFile(page_size=128)
        heap.insert(b"data")
        buffer = io.BytesIO()
        save_heap(heap, buffer)
        truncated = io.BytesIO(buffer.getvalue()[:-10])
        with pytest.raises(PageFormatError):
            load_heap(truncated)

    def test_record_count_mismatch_rejected(self):
        heap = HeapFile(page_size=128)
        heap.insert(b"data")
        buffer = io.BytesIO()
        save_heap(heap, buffer)
        image = bytearray(buffer.getvalue())
        image[16:24] = (99).to_bytes(8, "big")  # corrupt record count
        with pytest.raises(PageFormatError):
            load_heap(io.BytesIO(bytes(image)))


class TestTablePersistence:
    def test_roundtrip_single_column(self, tmp_path):
        table = make_table(n=500, d=30, k=16, page_size=512, seed=5)
        path = tmp_path / "t.rpr"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.name == table.name
        assert loaded.schema == table.schema
        assert loaded.num_rows == table.num_rows
        assert list(loaded.rows()) == list(table.rows())

    def test_roundtrip_multicolumn(self, tmp_path):
        table = make_multicolumn_table(
            "orders", 300, [("status", 10, 4), ("qty_code", 8, 20)],
            page_size=512, seed=6)
        path = tmp_path / "orders.rpr"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.schema.names == ("status", "qty_code")
        assert list(loaded.rows()) == list(table.rows())

    def test_positional_access_restored(self, tmp_path):
        table = make_table(n=200, d=10, k=12, page_size=512, seed=7)
        path = tmp_path / "t.rpr"
        save_table(table, path)
        loaded = load_table(path)
        for position in (0, 57, 199):
            assert loaded.row_at(position) == table.row_at(position)

    def test_indexes_rebuildable_after_load(self, tmp_path):
        table = make_table(n=400, d=25, k=12, page_size=512, seed=8)
        path = tmp_path / "t.rpr"
        save_table(table, path)
        loaded = load_table(path)
        index = loaded.create_index("ix", ["a"],
                                    kind=IndexKind.CLUSTERED)
        index.validate()
        assert index.num_entries == 400

    def test_estimator_runs_on_loaded_table(self, tmp_path):
        from repro.compression.null_suppression import NullSuppression
        from repro.core.samplecf import SampleCF, true_cf_table

        table = make_table(n=1000, d=50, k=16, page_size=512, seed=9)
        path = tmp_path / "t.rpr"
        save_table(table, path)
        loaded = load_table(path)
        original = true_cf_table(table, ["a"], NullSuppression(),
                                 page_size=512)
        restored = true_cf_table(loaded, ["a"], NullSuppression(),
                                 page_size=512)
        assert original == restored
        estimate = SampleCF(NullSuppression(), page_size=512) \
            .estimate_table(loaded, 0.1, ["a"], seed=1)
        assert abs(estimate.estimate - original) < 0.1

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rpr"
        path.write_bytes(b"garbage!" + b"\x00" * 64)
        with pytest.raises(SchemaError):
            load_table(path)
