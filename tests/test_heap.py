"""Unit tests for repro.storage.heap."""

import pytest

from repro.errors import RecordNotFoundError
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


class TestHeapFile:
    def test_insert_returns_sequential_rids(self):
        heap = HeapFile(page_size=128)
        rids = [heap.insert(f"r{i}".encode().ljust(20)) for i in range(20)]
        assert rids[0] == RID(0, 0)
        assert len(set(rids)) == 20
        assert heap.num_records == 20
        assert heap.num_pages > 1

    def test_get_by_rid(self):
        heap = HeapFile(page_size=128)
        rid = heap.insert(b"hello")
        assert heap.get(rid) == b"hello"

    def test_get_missing_page(self):
        heap = HeapFile(page_size=128)
        with pytest.raises(RecordNotFoundError):
            heap.get(RID(5, 0))

    def test_scan_order_matches_insert_order(self):
        heap = HeapFile(page_size=128)
        records = [f"rec-{i:03d}".encode() for i in range(30)]
        inserted = heap.insert_many(records)
        scanned = list(heap.scan())
        assert [record for _, record in scanned] == records
        assert [rid for rid, _ in scanned] == inserted

    def test_records_iterator(self):
        heap = HeapFile(page_size=128)
        heap.insert_many([b"a", b"b", b"c"])
        assert list(heap.records()) == [b"a", b"b", b"c"]

    def test_pages_and_page_access(self):
        heap = HeapFile(page_size=128)
        heap.insert_many([b"x" * 30 for _ in range(10)])
        pages = list(heap.pages())
        assert len(pages) == heap.num_pages
        assert heap.page(0) is pages[0]
        with pytest.raises(RecordNotFoundError):
            heap.page(heap.num_pages)

    def test_byte_accounting(self):
        heap = HeapFile(page_size=128)
        heap.insert_many([b"x" * 10 for _ in range(12)])
        assert heap.payload_bytes == 120
        assert heap.physical_bytes == heap.num_pages * 128

    def test_len(self):
        heap = HeapFile(page_size=128)
        assert len(heap) == 0
        heap.insert(b"a")
        assert len(heap) == 1

    def test_records_spanning_many_pages_stay_ordered(self):
        heap = HeapFile(page_size=128)
        records = [bytes([i % 251]) * 40 for i in range(50)]
        heap.insert_many(records)
        assert list(heap.records()) == records
        assert heap.num_pages >= 25  # 2 records of 40B + slots per page


class TestHeapPickling:
    def test_pickle_roundtrips_via_page_images(self):
        import pickle

        heap = HeapFile(page_size=128)
        records = [f"rec-{i:03d}".encode() for i in range(30)]
        rids = heap.insert_many(records)
        restored = pickle.loads(pickle.dumps(heap))
        assert restored.num_records == heap.num_records
        assert restored.num_pages == heap.num_pages
        assert list(restored.records()) == records
        assert [rid for rid, _ in restored.scan()] == rids
        assert restored.payload_bytes == heap.payload_bytes

    def test_restored_heap_keeps_appending(self):
        import pickle

        heap = HeapFile(page_size=128)
        heap.insert_many([b"x" * 30 for _ in range(5)])
        restored = pickle.loads(pickle.dumps(heap))
        rid = restored.insert(b"y" * 30)
        assert restored.get(rid) == b"y" * 30
        assert restored.num_records == 6
