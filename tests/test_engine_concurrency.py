"""Shared-engine concurrency regressions (the service-shaped bugs).

A long-lived service runs many clients through *one* engine, one store,
one tracer — a shape the original single-process CLI never exercised.
Each test here reproduces a bug that only bites in that setting and
locks the fix:

* ``default_engine()`` must not serialize every facade call on the
  init lock after construction (lock-free fast path);
* concurrent ``execute()`` calls on one engine must each attribute
  exactly their *own* store-counter movement (per-batch sinks, not
  handle-global snapshot diffs);
* ``engine.estimate()`` under a deadline must raise a typed
  :class:`EstimationError` instead of returning ``None`` and letting
  the caller crash later with ``AttributeError``.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import EstimationError
from repro.engine import EstimationEngine, EstimationRequest
from repro.faults import Deadline
from repro.store import SampleStore
from repro.workloads.generators import make_table


def _request(seed_table: int, *, fraction: float = 0.02,
             trials: int = 2) -> EstimationRequest:
    table = make_table(n=3000, d=50, k=20, page_size=1024,
                       seed=seed_table)
    return EstimationRequest(table=table, columns=("a",),
                             algorithm="null_suppression",
                             fraction=fraction, trials=trials,
                             page_size=table.page_size)


class TestDefaultEngineFastPath:
    def test_initialized_read_does_not_take_the_lock(self):
        """Regression: every facade call used to take the global lock.

        Holding the init lock from one thread must not block reads
        once the engine exists — before the fix this join times out
        because ``default_engine()`` queues behind the held lock.
        """
        import repro.engine.engine as engine_module

        original = engine_module._DEFAULT_ENGINE
        engine_module._DEFAULT_ENGINE = EstimationEngine(seed=0)
        got: list[EstimationEngine] = []
        try:
            with engine_module._DEFAULT_ENGINE_LOCK:
                reader = threading.Thread(
                    target=lambda: got.append(
                        engine_module.default_engine()))
                reader.start()
                reader.join(timeout=5.0)
                assert not reader.is_alive(), \
                    "default_engine() blocked on the init lock"
            assert got == [engine_module._DEFAULT_ENGINE]
        finally:
            engine_module._DEFAULT_ENGINE = original

    def test_hammered_reads_return_one_instance(self):
        import repro.engine.engine as engine_module

        original = engine_module._DEFAULT_ENGINE
        engine_module._DEFAULT_ENGINE = None
        try:
            barrier = threading.Barrier(16)
            seen: list[EstimationEngine] = []

            def grab() -> None:
                barrier.wait()
                for _ in range(50):
                    seen.append(engine_module.default_engine())

            threads = [threading.Thread(target=grab)
                       for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(seen) == 16 * 50
            assert len({id(engine) for engine in seen}) == 1
        finally:
            engine_module._DEFAULT_ENGINE = original


class TestPerBatchStoreAttribution:
    def test_concurrent_executes_attribute_only_their_own_movement(
            self, tmp_path):
        """Regression: traced batches used to report the *union*.

        The old implementation diffed the handle-global
        ``store.counters`` around ``runner.run``, so two overlapping
        batches each charged themselves both batches' bytes. With
        per-batch sinks the invariant is exact: the two batches' store
        dicts partition the store's global movement.
        """
        store = SampleStore(tmp_path / "store")
        engine = EstimationEngine(seed=11, store=store)
        batches = [[_request(7)], [_request(8)]]
        results: list = [None, None]
        barrier = threading.Barrier(2)

        def run(slot: int) -> None:
            barrier.wait()
            results[slot] = engine.execute(batches[slot])

        threads = [threading.Thread(target=run, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        moved = [batch.stats["store"] for batch in results]
        for per_batch in moved:
            assert per_batch["bytes_written"] > 0
        names = set(moved[0]) | set(moved[1])
        for name in names:
            total = moved[0].get(name, 0) + moved[1].get(name, 0)
            assert total == store.counters[name], (
                f"store counter {name!r}: per-batch attribution "
                f"{moved[0].get(name, 0)} + {moved[1].get(name, 0)} "
                f"!= global movement {store.counters[name]}")

    def test_per_batch_movement_matches_serial_run(self, tmp_path):
        """Each concurrent batch's dict equals its own serial run's."""
        serial_store = SampleStore(tmp_path / "serial")
        serial = [
            EstimationEngine(seed=11,
                             store=serial_store).execute([_request(7)]),
            EstimationEngine(seed=11,
                             store=serial_store).execute([_request(8)]),
        ]
        shared_store = SampleStore(tmp_path / "shared")
        engine = EstimationEngine(seed=11, store=shared_store)
        results: list = [None, None]
        barrier = threading.Barrier(2)

        def run(slot: int, request: EstimationRequest) -> None:
            barrier.wait()
            results[slot] = engine.execute([request])

        threads = [
            threading.Thread(target=run, args=(0, _request(7))),
            threading.Thread(target=run, args=(1, _request(8)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Byte counts wobble across runs (envelope meta embeds a
        # wall-clock stamp of varying JSON width), so compare the
        # stable movement counters; the partition test above pins the
        # byte-level attribution exactly.
        stable = ("sample_writes", "estimate_writes",
                  "sample_misses", "estimate_misses")
        for slot in range(2):
            assert results[slot].stats["store"]["bytes_written"] > 0
            for name in stable:
                assert results[slot].stats["store"][name] == \
                    serial[slot].stats["store"][name]

    def test_traced_metrics_match_actual_store_movement(self, tmp_path):
        """The tracer's store.* counters equal the store's own."""
        import io

        from repro.obs import Tracer

        store = SampleStore(tmp_path / "store")
        tracer = Tracer.to_stream(io.StringIO())
        engine = EstimationEngine(seed=11, store=store, tracer=tracer)
        barrier = threading.Barrier(2)
        requests = [_request(7), _request(8)]

        def run(request: EstimationRequest) -> None:
            barrier.wait()
            engine.execute([request])

        threads = [threading.Thread(target=run, args=(request,))
                   for request in requests]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for name in ("bytes_read", "bytes_written"):
            traced = tracer.metrics.counter(f"store.{name}").value
            assert traced == store.counters[name], (
                f"trace counter store.{name} = {traced} but the store "
                f"actually moved {store.counters[name]}")


class TestEstimateDeadlineFacade:
    def test_expired_deadline_raises_typed_error(self):
        engine = EstimationEngine(seed=11)
        with pytest.raises(EstimationError, match="deadline"):
            engine.estimate(_request(7), deadline=Deadline.after(0.0))

    def test_estimate_without_deadline_still_returns_result(self):
        engine = EstimationEngine(seed=11)
        result = engine.estimate(_request(7))
        assert len(result.estimates) == 2
        assert all(e.estimate > 0 for e in result.estimates)
