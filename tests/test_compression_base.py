"""Unit tests for repro.compression.base and registry and repack."""

import pytest

from repro.constants import PAGE_HEADER_SIZE
from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.compression.base import (CompressedBlock, CompressedColumn,
                                    CompressionAlgorithm, CompressionResult)
from repro.compression.null_suppression import NullSuppression
from repro.compression.dictionary import DictionaryCompression
from repro.compression.registry import (get_algorithm, list_algorithms,
                                        register_algorithm)
from repro.compression.repack import (COMPRESSION_INFO_BYTES,
                                      compressed_page_capacity, repack)

from tests.conftest import all_algorithms


class TestColumnize:
    def test_fixed_schema_roundtrip(self):
        schema = Schema([Column.of("a", "char(4)"),
                         Column.of("b", "integer")])
        records = [encode_record(schema, ("ab", 7)),
                   encode_record(schema, ("cd", -1))]
        columns = CompressionAlgorithm.columnize(records, schema)
        assert len(columns) == 2
        assert CompressionAlgorithm.recordize(columns) == records

    def test_mixed_schema_roundtrip(self):
        schema = Schema([Column.of("a", "char(4)"),
                         Column.of("v", "varchar(20)")])
        records = [encode_record(schema, ("ab", "hello")),
                   encode_record(schema, ("cd", ""))]
        columns = CompressionAlgorithm.columnize(records, schema)
        assert CompressionAlgorithm.recordize(columns) == records

    def test_wrong_width_rejected(self):
        schema = single_char_schema(4)
        with pytest.raises(CompressionError):
            CompressionAlgorithm.columnize([b"toolongrecord"], schema)

    def test_ragged_recordize_rejected(self):
        with pytest.raises(CompressionError):
            CompressionAlgorithm.recordize([[b"a"], [b"b", b"c"]])

    def test_empty_recordize(self):
        assert CompressionAlgorithm.recordize([]) == []


class TestBlockTypes:
    def test_negative_payload_rejected(self):
        with pytest.raises(CompressionError):
            CompressedColumn(b"", -1)

    def test_block_sizes(self):
        block = CompressedBlock(
            algorithm="x", row_count=2,
            columns=(CompressedColumn(b"abcd", 3),
                     CompressedColumn(b"xy", 2)))
        assert block.payload_size == 5
        assert block.serialized_size == 6

    def test_result_cf_and_savings(self):
        result = CompressionResult(
            algorithm="x", accounting="payload", uncompressed_bytes=100,
            compressed_bytes=25, row_count=10)
        assert result.compression_fraction == 0.25
        assert result.space_savings == 0.75

    def test_result_empty_rejected(self):
        result = CompressionResult(
            algorithm="x", accounting="payload", uncompressed_bytes=0,
            compressed_bytes=0, row_count=0)
        with pytest.raises(CompressionError):
            result.compression_fraction


class TestRegistry:
    def test_all_names_construct(self):
        for name in list_algorithms():
            algorithm = get_algorithm(name)
            assert algorithm.name == name

    def test_unknown_rejected(self):
        with pytest.raises(CompressionError):
            get_algorithm("zstd")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CompressionError):
            register_algorithm("null_suppression", NullSuppression)

    def test_custom_registration(self):
        class Custom(NullSuppression):
            def __init__(self):
                super().__init__()
                self.name = "custom_ns_test"

        register_algorithm("custom_ns_test", Custom)
        try:
            assert get_algorithm("custom_ns_test").name == "custom_ns_test"
        finally:
            from repro.compression import registry
            registry._FACTORIES.pop("custom_ns_test")

    def test_every_algorithm_has_scope_and_name(self):
        for algorithm in all_algorithms():
            assert algorithm.scope in ("page", "index")
            assert algorithm.name


class TestRepack:
    def test_capacity(self):
        assert compressed_page_capacity(1024) == \
            1024 - PAGE_HEADER_SIZE - COMPRESSION_INFO_BYTES

    def test_tiny_page_rejected(self):
        with pytest.raises(CompressionError):
            compressed_page_capacity(PAGE_HEADER_SIZE)

    def test_repack_fills_pages(self):
        schema = single_char_schema(20)
        records = [encode_record(schema, (f"v{i % 5}",))
                   for i in range(500)]
        result = repack(records, schema, NullSuppression(), 256)
        assert result.num_pages > 1
        assert sum(page.record_count for page in result.pages) == 500
        capacity = compressed_page_capacity(256)
        for page in result.pages[:-1]:
            assert page.payload_size <= capacity

    def test_repack_payload_matches_recompression(self):
        schema = single_char_schema(20)
        records = [encode_record(schema, (f"v{i % 5}",))
                   for i in range(300)]
        algorithm = DictionaryCompression()
        result = repack(records, schema, algorithm, 256)
        manual = 0
        for page in result.pages:
            group = records[page.record_start:
                            page.record_start + page.record_count]
            manual += algorithm.compress(group, schema).payload_size
        assert result.payload_size == manual

    def test_repack_empty_rejected(self):
        with pytest.raises(CompressionError):
            repack([], single_char_schema(8), NullSuppression(), 256)

    def test_physical_bytes(self):
        schema = single_char_schema(20)
        records = [encode_record(schema, ("abc",)) for _ in range(100)]
        result = repack(records, schema, NullSuppression(), 256)
        assert result.physical_bytes == result.num_pages * 256
