"""Unit tests for repro.storage.rid."""

from repro.storage.rid import RID, RID_BYTES


class TestRID:
    def test_encode_width(self):
        assert len(RID(3, 7).encode()) == RID_BYTES

    def test_roundtrip(self):
        for rid in (RID(0, 0), RID(1, 2), RID(2**31, 65535)):
            assert RID.decode(rid.encode()) == rid

    def test_tuple_behaviour(self):
        rid = RID(5, 9)
        page_id, slot = rid
        assert (page_id, slot) == (5, 9)
        assert rid == (5, 9)

    def test_str(self):
        assert str(RID(3, 4)) == "(3:4)"

    def test_ordering(self):
        assert RID(1, 5) < RID(2, 0)
        assert RID(1, 5) < RID(1, 6)
