"""Unit tests for repro.storage.table."""

import pytest

from repro.errors import SchemaError
from repro.storage.index import IndexKind
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.table import Table

PAGE = 256


def sample_table() -> Table:
    schema = Schema([Column.of("name", "char(10)"),
                     Column.of("qty", "integer")])
    rows = [("apple", 3), ("banana", 5), ("cherry", 2), ("apple", 9)]
    return Table.from_rows("fruit", schema, rows, page_size=PAGE)


class TestTableBasics:
    def test_from_rows(self):
        table = sample_table()
        assert table.num_rows == 4
        assert len(table) == 4
        assert list(table.rows())[1] == ("banana", 5)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", single_char_schema(5))

    def test_row_at_positions(self):
        table = sample_table()
        assert table.row_at(0) == ("apple", 3)
        assert table.row_at(3) == ("apple", 9)
        assert table.rows_at([2, 0]) == [("cherry", 2), ("apple", 3)]

    def test_rid_at_resolves(self):
        table = sample_table()
        rid = table.rid_at(2)
        assert table.heap.get(rid) is not None

    def test_column_values(self):
        table = sample_table()
        assert table.column_values("qty") == [3, 5, 2, 9]
        with pytest.raises(SchemaError):
            table.column_values("missing")

    def test_pages_iterates_heap(self):
        table = sample_table()
        assert sum(len(p) for p in table.pages()) == 4

    def test_invalid_row_rejected(self):
        from repro.errors import EncodingError
        table = sample_table()
        with pytest.raises(EncodingError):
            table.insert(("toolongname", "not an int"))


class TestTableIndexes:
    def test_create_index_and_lookup(self):
        table = sample_table()
        index = table.create_index("ix_name", ["name"])
        assert index.kind is IndexKind.NONCLUSTERED
        rids = index.search_rids(("apple",))
        assert sorted(table.heap.get(rid)[:5] for rid in rids) == \
            [b"apple", b"apple"]

    def test_create_clustered_index(self):
        table = sample_table()
        index = table.create_index("ix_c", ["name"],
                                   kind=IndexKind.CLUSTERED)
        assert [row[0] for row in index.range_scan()] == \
            ["apple", "apple", "banana", "cherry"]

    def test_duplicate_index_name_rejected(self):
        table = sample_table()
        table.create_index("ix", ["name"])
        with pytest.raises(SchemaError):
            table.create_index("ix", ["qty"])

    def test_insert_maintains_indexes(self):
        table = sample_table()
        index = table.create_index("ix", ["name"])
        table.insert(("fig", 1))
        assert len(index.search_rids(("fig",))) == 1
        index.validate()

    def test_drop_index(self):
        table = sample_table()
        table.create_index("ix", ["name"])
        table.drop_index("ix")
        assert "ix" not in table.indexes
        with pytest.raises(SchemaError):
            table.drop_index("ix")

    def test_index_sees_only_current_rows(self):
        table = sample_table()
        index = table.create_index("ix", ["qty"])
        assert index.num_entries == 4


class TestTablePickling:
    def test_pickle_roundtrips_via_heap(self):
        import pickle

        table = sample_table()
        restored = pickle.loads(pickle.dumps(table))
        assert restored.name == table.name
        assert restored.num_rows == table.num_rows
        assert list(restored.rows()) == list(table.rows())
        # RIDs replay from the heap scan, not from a serialized list.
        assert [restored.rid_at(i) for i in range(4)] == \
            [table.rid_at(i) for i in range(4)]
        assert restored.row_at(2) == table.row_at(2)

    def test_pickle_rebuilds_indexes(self):
        import pickle

        table = sample_table()
        table.create_index("by_name", ["name"],
                           kind=IndexKind.NONCLUSTERED)
        restored = pickle.loads(pickle.dumps(table))
        assert set(restored.indexes) == {"by_name"}
        index = restored.indexes["by_name"]
        assert index.kind is IndexKind.NONCLUSTERED
        assert index.num_entries == 4
        assert index.search_rids(("apple",)) == \
            table.indexes["by_name"].search_rids(("apple",))

    def test_restored_table_accepts_inserts(self):
        import pickle

        table = sample_table()
        restored = pickle.loads(pickle.dumps(table))
        restored.insert(("durian", 1))
        assert restored.num_rows == 5
        assert restored.row_at(4) == ("durian", 1)
