"""Deterministic regressions for the lazy what-if advisor.

The contract under test: for a fixed seed the lazy advisor's selected
design — candidates, sizes, step log, costs — is *bit-identical* to the
eager :func:`advise_from_data`, while spending strictly fewer engine
units; pruning and early stopping change trial counts only, never the
winner; and the ``whatif_*`` engine counters reconcile exactly with the
units that actually ran.
"""

import pytest

from repro.errors import AdvisorError
from repro.workloads.generators import make_multicolumn_table
from repro.storage.index import IndexKind
from repro.compression.registry import get_algorithm
from repro.core.bounds import CFInterval
from repro.core.samplecf import true_cf_table
from repro.engine import EstimationEngine, EstimationRequest
from repro.advisor import (CandidateIndex, CostModel, Query,
                           WhatIfAdvisor, advise_from_data,
                           advise_what_if, select_indexes,
                           stats_for_tables)

PAGE = 1024
SEED = 41
FRACTION = 0.1
TRIALS = 4
ALGORITHMS = ["null_suppression", "dictionary", "global_dictionary",
              "rle"]
BOUNDS = (40_000, 120_000, 400_000)


def build_tables():
    return {
        "orders": make_multicolumn_table(
            "orders", 1500, [("status", 10, 5), ("customer", 24, 200)],
            page_size=PAGE, seed=15),
        "parts": make_multicolumn_table(
            "parts", 900, [("sku", 24, 100), ("brand", 16, 12)],
            page_size=PAGE, seed=16),
    }


@pytest.fixture(scope="module")
def tables():
    return build_tables()


@pytest.fixture(scope="module")
def queries():
    return [
        Query("q_status", "orders", ("status",), selectivity=0.2,
              weight=10),
        Query("q_customer", "orders", ("customer",), selectivity=0.05,
              weight=5),
        Query("q_sku", "parts", ("sku",), selectivity=0.1, weight=4),
        Query("q_brand", "parts", ("brand",), selectivity=0.3, weight=2),
    ]


def run_eager(tables, queries, bound):
    return advise_from_data(
        tables, queries, bound, algorithms=ALGORITHMS,
        fraction=FRACTION, trials=TRIALS, model=CostModel(PAGE),
        seed=SEED)


def make_advisor(tables, queries, **kwargs):
    options = dict(algorithms=ALGORITHMS, fraction=FRACTION,
                   max_trials=TRIALS, model=CostModel(PAGE), seed=SEED)
    options.update(kwargs)
    return WhatIfAdvisor(tables, queries, **options)


def assert_identical(eager, lazy):
    """Full bit-identity of the advisor outcome (not just the design)."""
    assert lazy.chosen == eager.chosen
    assert lazy.steps == eager.steps
    assert lazy.bytes_used == eager.bytes_used
    assert lazy.cost_before == eager.cost_before
    assert lazy.cost_after == eager.cost_after


class TestSelectionParity:
    @pytest.mark.parametrize("bound", BOUNDS)
    def test_bit_identical_to_eager(self, tables, queries, bound):
        eager = run_eager(tables, queries, bound)
        lazy = make_advisor(tables, queries).advise(bound)
        assert_identical(eager, lazy)

    @pytest.mark.parametrize("bound", BOUNDS)
    def test_spends_fewer_units(self, tables, queries, bound):
        lazy = make_advisor(tables, queries).advise(bound)
        report = lazy.report
        assert report.units_executed <= report.units_eager
        assert report.units_saved == \
            report.units_eager - report.units_executed
        # The winner of every round ran the full budget.
        for candidate in lazy.chosen:
            if candidate.compressed:
                assert report.trials_by_candidate[candidate.name] == \
                    TRIALS

    def test_early_stop_changes_trial_counts_only(self, tables, queries):
        """Adaptive allocation may move units around, never the design."""
        bound = BOUNDS[0]
        adaptive = make_advisor(tables, queries).advise(bound)
        straight = make_advisor(tables, queries,
                                adaptive=False).advise(bound)
        assert_identical(adaptive, straight)
        assert adaptive.report.units_executed <= \
            straight.report.units_executed

    def test_no_prune_still_identical(self, tables, queries):
        bound = BOUNDS[1]
        eager = run_eager(tables, queries, bound)
        lazy = make_advisor(tables, queries, prune=False).advise(bound)
        assert_identical(eager, lazy)
        assert not [event for event in lazy.report.prune_events
                    if event.reason == "bound"]

    def test_deterministic_bounds_only_identical(self, tables, queries):
        bound = BOUNDS[0]
        eager = run_eager(tables, queries, bound)
        lazy = make_advisor(tables, queries,
                            use_probabilistic=False).advise(bound)
        assert_identical(eager, lazy)
        for event in lazy.report.prune_events:
            assert event.deterministic

    def test_repeat_advise_reuses_estimates(self, tables, queries):
        advisor = make_advisor(tables, queries)
        first = advisor.advise(BOUNDS[1])
        again = advisor.advise(BOUNDS[1])
        assert_identical(first, again)
        # Everything needed was already estimated: no new units.
        assert again.report.units_executed == 0

    def test_advise_what_if_convenience(self, tables, queries):
        bound = BOUNDS[1]
        lazy = advise_what_if(
            tables, queries, bound, algorithms=ALGORITHMS,
            fraction=FRACTION, max_trials=TRIALS, model=CostModel(PAGE),
            seed=SEED)
        assert_identical(run_eager(tables, queries, bound), lazy)


class TestStoreWarmStart:
    def test_bit_identical_with_warm_store(self, queries, tmp_path):
        store_dir = tmp_path / "store"
        results = []
        for _ in range(2):
            # Tables rebuild each run: warm starts must come from
            # content, not object identity.
            advisor = make_advisor(build_tables(), queries,
                                   store=str(store_dir))
            results.append((advisor.advise(BOUNDS[0]),
                            advisor.engine.stats.snapshot()))
        (cold, cold_stats), (warm, warm_stats) = results
        assert_identical(cold, warm)
        assert warm_stats["samples_materialized"] == 0
        assert warm_stats["estimate_store_hits"] > 0

    def test_eager_store_warms_lazy(self, queries, tmp_path):
        """Per-trial estimate keys line up across the two paths."""
        store_dir = tmp_path / "store"
        tables = build_tables()
        eager = advise_from_data(
            tables, queries, BOUNDS[0], algorithms=ALGORITHMS,
            fraction=FRACTION, trials=TRIALS, model=CostModel(PAGE),
            seed=SEED, store=str(store_dir))
        advisor = make_advisor(build_tables(), queries,
                               store=str(store_dir))
        lazy = advisor.advise(BOUNDS[0])
        assert_identical(eager, lazy)
        stats = advisor.engine.stats.snapshot()
        assert stats["samples_materialized"] == 0
        assert stats["estimate_store_hits"] == \
            lazy.report.units_executed


class TestCounters:
    def test_counters_reconcile_with_units_run(self, tables, queries):
        advisor = make_advisor(tables, queries)
        lazy = advisor.advise(BOUNDS[0])
        stats = advisor.engine.stats.snapshot()
        report = lazy.report
        compressed = report.compressed_candidates
        # Engine trial units actually executed == the report's spend.
        assert stats["trials"] == report.units_executed
        assert stats["trials"] == \
            compressed * TRIALS - stats["whatif_trials_saved"]
        assert stats["whatif_early_stops"] == report.early_stopped
        assert stats["whatif_rounds"] == report.rounds
        assert stats["whatif_pruned"] == len(report.prune_events)
        # Per-candidate allocations sum to the spend and never exceed
        # the budget.
        assert sum(report.trials_by_candidate.values()) == \
            report.units_executed
        assert all(0 <= t <= TRIALS
                   for t in report.trials_by_candidate.values())

    def test_budget_prune_skips_estimation_entirely(self, queries,
                                                    tables):
        """A bound below every index size prunes without any units.

        Restricted to algorithms with deterministic priors: a
        trivial-prior codec (rle, page) admits a zero lower size bound,
        so only an estimate can prove it infeasible.
        """
        advisor = make_advisor(
            tables, queries,
            algorithms=["null_suppression", "dictionary",
                        "global_dictionary"])
        result = advisor.advise(10.0)
        assert result.chosen == ()
        assert result.report.units_executed == 0
        assert result.report.pruned_never_estimated == \
            result.report.compressed_candidates
        reasons = {event.reason
                   for event in result.report.prune_events}
        assert reasons == {"budget"}


class TestPruningSoundness:
    def test_prior_intervals_contain_every_trial(self, tables, queries):
        """The deterministic envelopes hold for real codec estimates."""
        advisor = make_advisor(tables, queries)
        engine = EstimationEngine(seed=SEED)
        for state in advisor.states:
            if not state.compressed or state.prior.high == float("inf"):
                continue
            batch = engine.execute([state.request])
            for estimate in batch.results[0].estimates:
                assert state.prior.contains(estimate.estimate), (
                    f"{state.name}: {estimate.estimate} outside "
                    f"[{state.prior.low}, {state.prior.high}]")

    def test_prior_intervals_contain_exact_cf(self, tables, queries):
        """Deterministic envelopes bound the exact CF, not just samples.

        This is what makes a zero-trial prune safe against the truth:
        a candidate excluded on its prior alone could not have won even
        if its size had been computed by compressing the full index.
        """
        advisor = make_advisor(tables, queries)
        for state in advisor.states:
            if not state.compressed or state.prior.high == float("inf"):
                continue
            exact = true_cf_table(
                tables[state.table_name], state.key_columns,
                state.algorithm, kind=IndexKind.NONCLUSTERED,
                page_size=PAGE)
            assert state.prior.contains(exact), (
                f"{state.name}: exact CF {exact} outside "
                f"[{state.prior.low}, {state.prior.high}]")

    def test_no_pruned_candidate_would_have_won_exactly(self, queries,
                                                        tables):
        """Candidates pruned without estimation stay losers at exact CF.

        A tight bound forces zero-trial budget prunes under the
        deterministic priors; replacing those candidates' sizes with
        their exact CFs must not change the selected design (they were
        excluded because even their best case could not fit or win —
        and the priors provably contain the exact CF).
        """
        bound = 6_000.0
        advisor = make_advisor(
            tables, queries,
            algorithms=["null_suppression", "dictionary",
                        "global_dictionary"])
        lazy = advisor.advise(bound)
        assert advisor.last_report.pruned_never_estimated > 0
        candidates = []
        for state in advisor.states:
            if not state.compressed or state.trials_run >= TRIALS:
                candidates.append(state.as_candidate()
                                  if state.resolved else None)
                continue
            exact = true_cf_table(
                tables[state.table_name], state.key_columns,
                state.algorithm, kind=IndexKind.NONCLUSTERED,
                page_size=PAGE)
            candidates.append(CandidateIndex(
                table=state.table_name, key_columns=state.key_columns,
                compressed=True, algorithm=state.algorithm.name,
                size_bytes=state.plain_bytes * exact,
                size_source="exact", estimated_cf=exact))
        candidates = [c for c in candidates if c is not None]
        oracle = select_indexes(candidates, queries,
                                stats_for_tables(tables), bound,
                                CostModel(PAGE))
        lazy_design = {(c.table, c.key_columns, c.compressed,
                        c.algorithm) for c in lazy.chosen}
        oracle_design = {(c.table, c.key_columns, c.compressed,
                          c.algorithm) for c in oracle.chosen}
        assert lazy_design == oracle_design


class TestIncrementalExecution:
    def test_expand_trials_bit_compatible(self, tables):
        """Split trials replay the full request's values exactly."""
        engine = EstimationEngine(seed=SEED)
        request = EstimationRequest(
            table=tables["orders"], columns=("status",),
            algorithm=get_algorithm("null_suppression"),
            fraction=FRACTION, trials=TRIALS,
            kind=IndexKind.NONCLUSTERED, page_size=PAGE)
        full = engine.execute([request]).results[0].values.tolist()
        singles = engine.trial_requests(request)
        assert len(singles) == TRIALS
        # Run the split trials out of order on a *fresh* engine.
        other = EstimationEngine(seed=SEED)
        split = [None] * TRIALS
        for position in reversed(range(TRIALS)):
            result = other.execute([singles[position]]).results[0]
            split[position] = result.estimates[0].estimate
        assert split == full

    def test_expand_trials_rejects_opaque_seed(self, tables):
        import numpy as np

        engine = EstimationEngine(seed=SEED)
        request = EstimationRequest(
            table=tables["orders"], columns=("status",),
            fraction=FRACTION, seed=np.random.default_rng(1),
            kind=IndexKind.NONCLUSTERED, page_size=PAGE)
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            engine.trial_requests(request)


class TestValidation:
    def test_bound_must_be_positive(self, tables, queries):
        with pytest.raises(AdvisorError):
            make_advisor(tables, queries).advise(0)

    def test_engine_and_seed_rejected(self, tables, queries):
        with pytest.raises(AdvisorError):
            WhatIfAdvisor(tables, queries, engine=EstimationEngine(1),
                          seed=2)

    def test_engine_and_store_rejected(self, tables, queries, tmp_path):
        with pytest.raises(AdvisorError):
            WhatIfAdvisor(tables, queries, engine=EstimationEngine(1),
                          store=str(tmp_path / "s"))

    def test_trial_budget_must_be_positive(self, tables, queries):
        with pytest.raises(AdvisorError):
            WhatIfAdvisor(tables, queries, max_trials=0)

    def test_unresolved_candidate_cannot_commit(self, tables, queries):
        advisor = make_advisor(tables, queries)
        state = next(s for s in advisor.states if s.compressed)
        with pytest.raises(AdvisorError):
            state.as_candidate()

    def test_cf_interval_validation(self):
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            CFInterval(0.5, 0.2)
        with pytest.raises(EstimationError):
            CFInterval(-0.1, 0.2)
        interval = CFInterval(0.2, 0.6)
        assert interval.contains(0.2) and interval.contains(0.6)
        assert not interval.contains(0.61)
        assert interval.intersect(CFInterval(0.5, 0.9)).low == 0.5
