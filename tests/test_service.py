"""Service-shaped tests: HTTP endpoints, micro-batching, degradation.

The engine suites already lock batch determinism; this file asserts the
service preserves it across transports and concurrency:

* endpoint contracts (health/stats/cache, estimate, batch, advise,
  streamed advise) over a real threaded HTTP server;
* micro-batching — N concurrent clients coalesce into shared engine
  batches yet get results bit-identical to serial submission, and
  cross-client duplicate specs materialize each sample exactly once;
* typed degradation — 400/404/413/429/503/504 envelopes, deadline
  runs returning typed nulls instead of wrong numbers;
* the ``repro serve`` subprocess boot path and its ready line.
"""

import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine.engine import EstimationEngine
from repro.service import (MicroBatcher, ServiceConfig, TooManyRequests,
                           make_server)
from repro.service.app import EstimationService

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

BATCH_SPEC = {
    "seed": 11,
    "workloads": {
        "names": {"scenario": "status_codes", "rows": 4000},
        "ids": {"n": 3000, "d": 30, "k": 20, "seed": 5},
    },
    "requests": [
        {"workload": "names", "algorithm": "null_suppression",
         "fraction": 0.02, "trials": 3},
        {"workload": "ids", "algorithm": "rle", "fraction": 0.05,
         "trials": 2},
    ],
}

ADVISE_SPEC = {
    "seed": 3,
    "storage_bound_bytes": 2000000,
    "trials": 2,
    "tables": {"t": {"n": 2000, "d": 40, "k": 12, "seed": 2}},
    "queries": [{"table": "t", "columns": ["a"],
                 "selectivity": 0.05}],
}


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def http_get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_post(base: str, path: str, payload,
              raw: bytes | None = None) -> tuple[int, dict]:
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_post_stream(base: str, path: str, payload) -> list[dict]:
    """POST and decode an NDJSON response into records."""
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as resp:
        assert resp.status == 200
        assert resp.headers.get("Content-Type") == \
            "application/x-ndjson"
        text = resp.read().decode("utf-8")
    return [json.loads(line) for line in text.splitlines() if line]


def start_server(config: ServiceConfig):
    """Bind + run a service in a daemon thread; return (base, service,
    stop)."""
    server, service = make_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]

    def stop() -> None:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)

    return f"http://{host}:{port}", service, stop


@pytest.fixture
def served():
    base, service, stop = start_server(ServiceConfig(window=0.01))
    yield base, service
    stop()


# ----------------------------------------------------------------------
# Endpoint contracts
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_health(self, served):
        base, _ = served
        status, payload = http_get(base, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["executor"] == "serial"
        assert payload["store"] is None

    def test_estimate_single(self, served):
        base, _ = served
        status, payload = http_post(base, "/estimate", {
            "seed": 4,
            "workloads": {"w": {"n": 2000, "d": 20, "k": 10}},
            "request": {"workload": "w", "fraction": 0.02,
                        "trials": 3},
        })
        assert status == 200
        entry = payload["result"]
        assert entry["workload"] == "w"
        assert len(entry["estimates"]) == 3
        assert 0.0 < entry["mean"] <= 1.5

    def test_batch_matches_cli_bit_identically(self, served, tmp_path,
                                               capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(BATCH_SPEC), encoding="utf-8")
        assert main(["estimate-batch", str(spec_path)]) == 0
        cli_payload = json.loads(capsys.readouterr().out)

        base, _ = served
        status, payload = http_post(base, "/estimate-batch", BATCH_SPEC)
        assert status == 200
        assert payload["seed"] == BATCH_SPEC["seed"]
        assert payload["results"] == cli_payload["results"]

    def test_repeat_batches_share_samples(self, served):
        base, service = served
        for _ in range(2):
            status, _ = http_post(base, "/estimate-batch", BATCH_SPEC)
            assert status == 200
        stats = service.engine.stats.as_dict()
        # The second POST resolves every trial from the memory tier:
        # the workload cache canonicalized both submissions to the
        # same built objects, so node keys match across requests.
        assert stats["samples_materialized"] == 5
        assert stats["sample_cache_hits"] >= 5

    def test_stats_surfaces(self, served):
        base, _ = served
        http_post(base, "/estimate-batch", BATCH_SPEC)
        status, payload = http_get(base, "/stats")
        assert status == 200
        assert payload["engine"]["requests"] == 5
        assert payload["batcher"]["rounds"] >= 1
        assert payload["workload_cache"]["entries"] == 2
        assert payload["service"]["batch_requests"] == 1
        assert payload["store"] is None
        counters = payload["metrics"]["counters"]
        assert counters.get("engine.requests") == 5

    def test_cache_endpoints_with_store(self, tmp_path):
        base, service, stop = start_server(
            ServiceConfig(window=0.0, store_dir=str(tmp_path / "st")))
        try:
            http_post(base, "/estimate-batch", BATCH_SPEC)
            status, info = http_get(base, "/cache")
            assert status == 200
            assert info["store"]["samples"]["entries"] == 5
            assert info["memory_samples"] == 5
            status, cleared = http_post(base, "/cache",
                                        {"action": "clear"})
            assert status == 200
            assert cleared["removed"] >= 5
        finally:
            stop()

    def test_cache_action_without_store_is_400(self, served):
        base, _ = served
        status, payload = http_post(base, "/cache",
                                    {"action": "prune",
                                     "max_bytes": 10})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_unknown_endpoint_is_404(self, served):
        base, _ = served
        status, payload = http_get(base, "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        status, payload = http_post(base, "/nope", {})
        assert status == 404

    def test_malformed_json_is_400(self, served):
        base, _ = served
        status, payload = http_post(base, "/estimate-batch", None,
                                    raw=b"{nope")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_invalid_spec_is_400(self, served):
        base, _ = served
        status, payload = http_post(base, "/estimate-batch",
                                    {"workloads": {}, "requests": []})
        assert status == 400
        assert "workloads" in payload["error"]["message"]

    def test_advise_matches_cli(self, served, tmp_path, capsys):
        spec_path = tmp_path / "advise.json"
        spec_path.write_text(json.dumps(ADVISE_SPEC), encoding="utf-8")
        assert main(["advise", str(spec_path), "--what-if"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)

        base, _ = served
        status, payload = http_post(base, "/advise", ADVISE_SPEC)
        assert status == 200
        assert payload["chosen"] == cli_payload["chosen"]
        assert payload["cost_after"] == cli_payload["cost_after"]
        assert [c["name"] for c in payload["chosen"]] == \
            ["ix_t_a__page", "ix_t_a"]

    def test_advise_stream_ndjson(self, served):
        base, _ = served
        records = http_post_stream(base, "/advise?stream=1",
                                   ADVISE_SPEC)
        assert [r["type"] for r in records[:-1]] == \
            ["round"] * (len(records) - 1)
        assert len(records) >= 2
        final = records[-1]
        assert final["type"] == "result"
        status, direct = http_post(base, "/advise", ADVISE_SPEC)
        assert status == 200
        assert final["chosen"] == direct["chosen"]
        # Round events carry the advisor's running state.
        assert records[0]["round"] == 1
        assert records[-2]["winner"] is None  # final no-commit round

    def test_advise_stream_error_record(self, served):
        base, _ = served
        records = http_post_stream(
            base, "/advise", {"stream": True, "queries": [],
                              "tables": {"t": {"n": 100, "d": 4,
                                               "k": 2}},
                              "storage_bound_bytes": 1000})
        assert records == [{
            "type": "error", "code": "bad_request",
            "message": records[0]["message"]}]
        assert "queries" in records[0]["message"]


# ----------------------------------------------------------------------
# Micro-batching: coalescing, sharing, determinism
# ----------------------------------------------------------------------
class TestMicroBatching:
    def _concurrent_post(self, base: str, specs: list[dict],
                         ) -> list[tuple[int, dict]]:
        """POST all specs at once (barrier-released threads)."""
        barrier = threading.Barrier(len(specs))
        outcomes: list = [None] * len(specs)

        def client(position: int, spec: dict) -> None:
            barrier.wait()
            outcomes[position] = http_post(base, "/estimate-batch",
                                           spec)

        threads = [threading.Thread(target=client, args=(i, spec))
                   for i, spec in enumerate(specs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes

    def test_concurrent_clients_bit_identical_to_serial(self, served):
        # Serial reference: each spec alone, on a fresh service.
        serial = EstimationService(ServiceConfig(window=0.0))
        specs = []
        for fraction in (0.02, 0.03, 0.05, 0.08):
            spec = json.loads(json.dumps(BATCH_SPEC))
            for request in spec["requests"]:
                request["fraction"] = fraction
            specs.append(spec)
        reference = [serial.run_batch(spec)["results"]
                     for spec in specs]
        serial.close()

        base, service, stop = start_server(ServiceConfig(window=0.25))
        try:
            outcomes = self._concurrent_post(base, specs)
            for (status, payload), expected in zip(outcomes, reference):
                assert status == 200
                assert payload["results"] == expected
            # The generous window guarantees the barrier-released
            # clients shared at least one engine round.
            snapshot = service.batcher.snapshot()
            assert snapshot["coalesced_rounds"] >= 1
            assert snapshot["submissions"] == 4
            assert any(payload["batching"]["coalesced_with"] > 0
                       for _, payload in outcomes)
        finally:
            stop()

    def test_duplicate_specs_materialize_each_sample_once(self):
        base, service, stop = start_server(ServiceConfig(window=0.25))
        try:
            outcomes = self._concurrent_post(
                base, [BATCH_SPEC, BATCH_SPEC, BATCH_SPEC])
            payloads = [payload for status, payload in outcomes
                        if status == 200]
            assert len(payloads) == 3
            assert payloads[0]["results"] == payloads[1]["results"]
            assert payloads[1]["results"] == payloads[2]["results"]
            stats = service.engine.stats.as_dict()
            # 3 clients x 5 trial units, but each distinct sample was
            # drawn exactly once — the whole point of coalescing
            # identical tenants over one engine.
            assert stats["requests"] == 15
            assert stats["samples_materialized"] == 5
            reused = (stats["sample_cache_hits"]
                      + (stats["requests"]
                         - stats["unique_requests"]))
            assert reused >= 10
        finally:
            stop()

    def test_window_zero_still_serves(self):
        base, _, stop = start_server(ServiceConfig(window=0.0))
        try:
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 200
            assert len(payload["results"]) == 2
        finally:
            stop()


# ----------------------------------------------------------------------
# Typed degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_queue_full_is_429(self):
        base, _, stop = start_server(
            ServiceConfig(window=0.01, max_pending=0))
        try:
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 429
            assert payload["error"]["code"] == "too_many_requests"
        finally:
            stop()

    def test_queue_full_unit(self):
        batcher = MicroBatcher(EstimationEngine(seed=0), window=0.0,
                               max_pending=0)
        with pytest.raises(TooManyRequests):
            batcher.submit([])
        assert batcher.snapshot()["rejected_queue_full"] == 1

    def test_no_slot_is_503_for_deadline_runs(self):
        base, service, stop = start_server(
            ServiceConfig(window=0.01, max_concurrent=1))
        try:
            spec = dict(BATCH_SPEC)
            spec["deadline"] = 30.0
            with service.batcher.execute_slot():  # hog the only slot
                status, payload = http_post(base, "/estimate-batch",
                                            spec)
            assert status == 503
            assert payload["error"]["code"] == "service_overloaded"
            # Batched (no-deadline) submissions queue instead of
            # failing: the leader blocks until the slot frees.
            release = threading.Timer(
                0.3, service.batcher._slots.release)
            service.batcher._slots.acquire()
            release.start()
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 200
        finally:
            stop()

    def test_deadline_zero_yields_typed_nulls(self, served):
        base, _ = served
        spec = dict(BATCH_SPEC)
        spec["deadline"] = 0.0
        status, payload = http_post(base, "/estimate-batch", spec)
        assert status == 200
        assert payload["complete"] is False
        for entry in payload["results"]:
            assert entry["deadline_exceeded"] is True
            assert entry["mean"] is None
            assert entry["estimates"] == []

    def test_deadline_zero_single_estimate_is_504(self, served):
        base, _ = served
        status, payload = http_post(base, "/estimate", {
            "seed": 4, "deadline": 0.0,
            "workloads": {"w": {"n": 2000, "d": 20, "k": 10}},
            "request": {"workload": "w", "fraction": 0.02},
        })
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_oversized_body_is_413(self):
        base, _, stop = start_server(
            ServiceConfig(window=0.0, max_body_bytes=64))
        try:
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 413
            assert payload["error"]["code"] == "payload_too_large"
        finally:
            stop()

    def test_oversized_batch_is_413(self):
        base, _, stop = start_server(
            ServiceConfig(window=0.0, max_batch_requests=1))
        try:
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 413
            assert "at most 1" in payload["error"]["message"]
        finally:
            stop()


# ----------------------------------------------------------------------
# Subprocess boot (the `repro serve` path)
# ----------------------------------------------------------------------
class TestServeBoot:
    def test_boot_serve_and_estimate(self, tmp_path):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--window", "0.01"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env={"PYTHONPATH": str(SRC_DIR),
                            "PATH": "/usr/bin:/bin"})
        try:
            assert process.stdout is not None
            line = process.stdout.readline().strip()
            assert line.startswith("repro-service-ready ")
            base = "http://" + line.split(" ", 1)[1]
            deadline = time.monotonic() + 10
            status, payload = http_post(base, "/estimate-batch",
                                        BATCH_SPEC)
            assert status == 200
            assert len(payload["results"]) == 2
            status, health = http_get(base, "/health")
            assert status == 200 and health["status"] == "ok"
            assert time.monotonic() < deadline
        finally:
            process.terminate()
            process.wait(timeout=10)
