"""Unit tests for repro.store — the persistent sample/estimate store."""

import os
import pickle

import pytest

from repro.errors import StoreError
from repro.sampling.row_samplers import (WithoutReplacementSampler,
                                         WithReplacementSampler)
from repro.storage.table import Table
from repro.storage.schema import single_char_schema
from repro.workloads.generators import make_histogram, make_table
from repro.engine import EstimationEngine, EstimationRequest
from repro.engine.samples import materialize_table_sample
from repro.engine.units import plan_units
from repro.store import (STORE_FORMAT, SampleStore, digest_parts,
                         estimate_store_key, histogram_fingerprint,
                         open_store, sample_store_key)


@pytest.fixture
def table() -> Table:
    return make_table(n=2000, d=40, k=20, page_size=1024, seed=7)


@pytest.fixture
def store(tmp_path) -> SampleStore:
    return SampleStore(tmp_path / "store")


def _units_for(table, **kwargs):
    request = EstimationRequest(table=table, columns=("a",),
                                page_size=table.page_size, **kwargs)
    plan = EstimationEngine(seed=11).plan([request])
    return plan_units(plan)


def _sample_for(table, seed=5, fraction=0.02):
    return materialize_table_sample(table, WithReplacementSampler(),
                                    fraction, seed)


def _entry_file(store, kind):
    files = sorted((store.root / kind).glob("*/*.bin"))
    assert files, f"no {kind} entries on disk"
    return files[0]


class TestFingerprints:
    def test_rebuilt_table_fingerprints_equal(self, table):
        rebuilt = make_table(n=2000, d=40, k=20, page_size=1024, seed=7)
        assert table is not rebuilt
        assert table.content_fingerprint() == \
            rebuilt.content_fingerprint()

    def test_fingerprint_ignores_table_name(self, table):
        twin = Table("different_name", table.schema,
                     page_size=table.page_size)
        twin.heap = table.heap
        assert twin.content_fingerprint() == table.content_fingerprint()

    def test_insert_changes_fingerprint(self):
        table = Table.from_rows("t", single_char_schema(8),
                                [("aa",), ("bb",)], page_size=256)
        before = table.content_fingerprint()
        table.insert(("cc",))
        assert table.content_fingerprint() != before

    def test_histogram_fingerprint_content_bound(self):
        one = make_histogram(4000, 30, 16, seed=3)
        two = make_histogram(4000, 30, 16, seed=3)
        other = make_histogram(4000, 30, 16, seed=4)
        assert histogram_fingerprint(one) == histogram_fingerprint(two)
        assert histogram_fingerprint(one) != histogram_fingerprint(other)

    def test_sample_key_varies_by_scope(self, table):
        base = _units_for(table, fraction=0.02, seed=5)[0]
        other_seed = _units_for(table, fraction=0.02, seed=6)[0]
        other_fraction = _units_for(table, fraction=0.05, seed=5)[0]
        keys = {sample_store_key(base), sample_store_key(other_seed),
                sample_store_key(other_fraction)}
        assert len(keys) == 3

    def test_sample_key_ignores_columns_and_algorithm(self, table):
        ns = _units_for(table, fraction=0.02, seed=5,
                        algorithm="null_suppression")[0]
        rle = _units_for(table, fraction=0.02, seed=5,
                         algorithm="rle")[0]
        assert sample_store_key(ns) == sample_store_key(rle)
        assert estimate_store_key(ns) != estimate_store_key(rle)

    def test_sampler_changes_sample_key(self, table):
        wr = _units_for(table, fraction=0.02, seed=5)[0]
        wor = _units_for(table, fraction=0.02, seed=5,
                         sampler=WithoutReplacementSampler())[0]
        assert sample_store_key(wr) != sample_store_key(wor)

    def test_opaque_seed_has_no_key(self, table):
        import numpy as np

        unit = _units_for(table, fraction=0.02,
                          seed=np.random.default_rng(1))[0]
        with pytest.raises(StoreError):
            sample_store_key(unit)
        with pytest.raises(StoreError):
            estimate_store_key(unit)

    def test_digest_parts_is_stable(self):
        assert digest_parts("a", 1, 2.5) == digest_parts("a", 1, 2.5)
        assert digest_parts("a", 1) != digest_parts("a", 2)


class TestRoundTrip:
    def test_sample_roundtrip(self, store, table):
        sample = _sample_for(table)
        key = digest_parts("test-sample")
        store.put_sample(key, sample)
        loaded = store.get_sample(key)
        assert loaded is not None
        assert loaded.rows == sample.rows
        assert loaded.rids == sample.rids
        assert loaded.fraction == sample.fraction

    def test_stored_samples_drop_built_indexes(self, store, table):
        from repro.storage.index import IndexKind

        sample = _sample_for(table)
        sample.index_for(table, ("a",), IndexKind.CLUSTERED, 1024, 1.0)
        assert sample.indexes
        key = digest_parts("strip")
        store.put_sample(key, sample)
        assert sample.indexes  # caller's copy untouched
        assert store.get_sample(key).indexes == {}

    def test_estimate_roundtrip(self, store, table):
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.02, seed=5,
                                    page_size=table.page_size)
        estimate = EstimationEngine(seed=1).estimate(request).estimates[0]
        key = digest_parts("test-estimate")
        store.put_estimate(key, estimate)
        assert store.get_estimate(key) == estimate

    def test_miss_returns_none(self, store):
        assert store.get_sample(digest_parts("nope")) is None
        assert store.get_estimate(digest_parts("nope")) is None

    def test_get_or_create_single_flight(self, store, table):
        key = digest_parts("create-once")
        calls = []

        def factory():
            calls.append(1)
            return _sample_for(table)

        first, hit_first = store.get_or_create_sample(key, factory)
        second, hit_second = store.get_or_create_sample(key, factory)
        assert (hit_first, hit_second) == (False, True)
        assert len(calls) == 1
        assert second.rows == first.rows

    def test_rejects_non_hex_keys(self, store, table):
        with pytest.raises(StoreError):
            store.put_sample("../escape", _sample_for(table))

    def test_concurrent_same_key_writes_never_tear(self, store, table):
        """Racing writers each use a private tmp file (mkstemp)."""
        import threading

        key = digest_parts("thread-race")
        sample = _sample_for(table)
        barrier = threading.Barrier(4)

        def writer():
            barrier.wait(timeout=10)
            for _ in range(5):
                store.put_sample(key, sample)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        loaded = store.get_sample(key)
        assert loaded is not None and loaded.rows == sample.rows
        assert store.counters["quarantined"] == 0
        assert not list(store.root.rglob(".tmp-*"))

    def test_open_store_normalises(self, store, tmp_path):
        assert open_store(None) is None
        assert open_store(store) is store
        opened = open_store(tmp_path / "store")
        assert isinstance(opened, SampleStore)
        assert opened.root == store.root


class TestFormat:
    def test_format_file_written(self, store):
        text = (store.root / "STORE_FORMAT").read_text().strip()
        assert text == str(STORE_FORMAT)

    def test_future_format_rejected(self, tmp_path):
        root = tmp_path / "future"
        root.mkdir()
        (root / "STORE_FORMAT").write_text("999\n")
        with pytest.raises(StoreError):
            SampleStore(root)

    def test_store_pickles_as_configuration(self, store, table):
        key = digest_parts("pickle-me")
        store.put_sample(key, _sample_for(table))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.get_sample(key) is not None

    def test_size_budget_validated(self, tmp_path):
        with pytest.raises(StoreError):
            SampleStore(tmp_path / "s", max_bytes=0)


class TestCorruption:
    def _corrupt(self, path):
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(blob))

    def test_flipped_byte_quarantines_and_misses(self, store, table):
        key = digest_parts("corrupt")
        store.put_sample(key, _sample_for(table))
        path = _entry_file(store, "samples")
        self._corrupt(path)
        assert store.get_sample(key) is None
        assert not path.exists()
        quarantined = list((store.root / "quarantine").glob("*.bin"))
        assert len(quarantined) == 1
        assert store.counters["quarantined"] == 1

    def test_corrupt_entry_rematerializes(self, store, table):
        key = digest_parts("heal")
        store.put_sample(key, _sample_for(table))
        self._corrupt(_entry_file(store, "samples"))
        fresh = _sample_for(table)
        loaded, hit = store.get_or_create_sample(key, lambda: fresh)
        assert hit is False  # the factory ran again
        assert loaded is fresh
        # ... and the re-written entry reads back cleanly.
        healed = store.get_sample(key)
        assert healed is not None and healed.rows == fresh.rows

    def test_truncated_entry_quarantines(self, store, table):
        key = digest_parts("truncate")
        store.put_sample(key, _sample_for(table))
        path = _entry_file(store, "samples")
        path.write_bytes(path.read_bytes()[:20])
        assert store.get_sample(key) is None
        assert store.counters["quarantined"] == 1

    def test_stats_reports_quarantine(self, store, table):
        key = digest_parts("statsq")
        store.put_sample(key, _sample_for(table))
        self._corrupt(_entry_file(store, "samples"))
        store.get_sample(key)
        stats = store.stats()
        assert stats["quarantined"]["entries"] == 1
        assert stats["samples"]["entries"] == 0


class TestEvictionAndMaintenance:
    def _fill(self, store, table, count):
        keys = [digest_parts("fill", i) for i in range(count)]
        for position, key in enumerate(keys):
            store.put_sample(key, _sample_for(table))
            # Deterministic LRU order regardless of filesystem
            # timestamp granularity: older entries get older mtimes.
            path = store._entry_path("samples", key)
            stamp = 1_000_000 + position
            os.utime(path, (stamp, stamp))
        return keys

    def test_prune_evicts_lru_first(self, store, table):
        keys = self._fill(store, table, 4)
        sizes = [entry.size_bytes for entry in store.entries()]
        keep_two = sum(sorted(sizes)[:2]) + max(sizes)
        outcome = store.prune(keep_two)
        assert outcome["evicted_entries"] >= 1
        survivors = {entry.key for entry in store.entries()}
        assert keys[0] not in survivors  # oldest evicted first
        assert keys[-1] in survivors  # newest kept

    def test_read_refreshes_lru_position(self, store, table):
        keys = self._fill(store, table, 3)
        assert store.get_sample(keys[0]) is not None  # touch oldest
        entry_bytes = max(e.size_bytes for e in store.entries())
        store.prune(entry_bytes)  # room for one entry only
        survivors = {entry.key for entry in store.entries()}
        assert survivors == {keys[0]}

    def test_write_triggers_eviction_with_budget(self, tmp_path, table):
        probe = SampleStore(tmp_path / "probe")
        probe.put_sample(digest_parts("probe"), _sample_for(table))
        entry_bytes = next(iter(probe.entries())).size_bytes
        store = SampleStore(tmp_path / "bounded",
                            max_bytes=entry_bytes * 2)
        self._fill(store, table, 4)
        assert len(store) <= 2
        assert store.counters["evicted"] >= 2

    def test_clear_removes_everything(self, store, table):
        self._fill(store, table, 3)
        assert store.clear() == 3
        assert len(store) == 0
        # the store still works after clearing
        store.put_sample(digest_parts("after"), _sample_for(table))
        assert len(store) == 1

    def test_invalidate_source_drops_only_that_source(self, store,
                                                      table):
        other = make_table(n=1000, d=10, k=8, page_size=1024, seed=9)
        fp_a = table.content_fingerprint()
        fp_b = other.content_fingerprint()
        store.put_sample(digest_parts("a"), _sample_for(table),
                         meta={"source": fp_a})
        store.put_sample(digest_parts("b"), _sample_for(other),
                         meta={"source": fp_b})
        assert store.invalidate_source(fp_a) == 1
        assert store.get_sample(digest_parts("a")) is None
        assert store.get_sample(digest_parts("b")) is not None

    def test_prune_rejects_negative_budget(self, store):
        with pytest.raises(StoreError):
            store.prune(-1)

    def test_stats_counts_bytes(self, store, table):
        self._fill(store, table, 2)
        stats = store.stats()
        assert stats["samples"]["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["max_bytes"] is None
