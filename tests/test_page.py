"""Unit tests for repro.storage.page."""

import pytest

from repro.constants import PAGE_HEADER_SIZE, SLOT_SIZE
from repro.errors import (PageFormatError, PageFullError,
                          RecordNotFoundError)
from repro.storage.page import Page, PageType, records_per_page


class TestPageAccounting:
    def test_empty_page(self):
        page = Page(256)
        assert page.slot_count == 0
        assert page.payload_bytes == 0
        assert page.used_bytes == PAGE_HEADER_SIZE
        assert page.free_bytes == 256 - PAGE_HEADER_SIZE

    def test_insert_updates_accounting(self):
        page = Page(256)
        page.insert(b"x" * 10)
        assert page.slot_count == 1
        assert page.payload_bytes == 10
        assert page.used_bytes == PAGE_HEADER_SIZE + SLOT_SIZE + 10

    def test_fill_to_capacity(self):
        page = Page(256)
        record = b"r" * 20
        expected = (256 - PAGE_HEADER_SIZE) // (20 + SLOT_SIZE)
        inserted = 0
        while page.fits(record):
            page.insert(record)
            inserted += 1
        assert inserted == expected
        assert page.free_bytes >= 0

    def test_page_full_error_carries_context(self):
        page = Page(64)
        page.insert(b"a" * 30)
        with pytest.raises(PageFullError) as excinfo:
            page.insert(b"b" * 30)
        assert excinfo.value.record_bytes == 30
        assert excinfo.value.free_bytes is not None

    def test_record_never_fitting_is_format_error(self):
        page = Page(64)
        with pytest.raises(PageFormatError):
            page.insert(b"z" * 64)

    def test_usable_bytes(self):
        assert Page.usable_bytes(8192) == 8192 - PAGE_HEADER_SIZE

    def test_page_size_bounds(self):
        with pytest.raises(PageFormatError):
            Page(32)
        with pytest.raises(PageFormatError):
            Page(70000)


class TestPageRecords:
    def test_get_and_iterate(self):
        page = Page(256)
        slots = [page.insert(bytes([i]) * 5) for i in range(3)]
        assert slots == [0, 1, 2]
        assert page.get(1) == b"\x01" * 5
        assert list(page.records()) == [bytes([i]) * 5 for i in range(3)]
        assert len(page) == 3

    def test_missing_slot(self):
        page = Page(256)
        with pytest.raises(RecordNotFoundError):
            page.get(0)
        page.insert(b"abc")
        with pytest.raises(RecordNotFoundError):
            page.get(1)

    def test_empty_record_allowed(self):
        page = Page(256)
        page.insert(b"")
        assert page.get(0) == b""


class TestPageSerialisation:
    def test_roundtrip(self):
        page = Page(256, page_id=7, page_type=PageType.INDEX_LEAF)
        for i in range(5):
            page.insert(f"record-{i}".encode())
        image = page.to_bytes()
        assert len(image) == 256
        parsed = Page.from_bytes(image)
        assert parsed.page_id == 7
        assert parsed.page_type is PageType.INDEX_LEAF
        assert list(parsed.records()) == list(page.records())
        assert parsed.used_bytes == page.used_bytes

    def test_roundtrip_full_page(self):
        page = Page(128)
        while page.fits(b"0123456789"):
            page.insert(b"0123456789")
        parsed = Page.from_bytes(page.to_bytes())
        assert list(parsed.records()) == list(page.records())

    def test_bad_type_rejected(self):
        page = Page(128)
        image = bytearray(page.to_bytes())
        image[4] = 250  # corrupt the page-type byte
        with pytest.raises(PageFormatError):
            Page.from_bytes(bytes(image))

    def test_short_image_rejected(self):
        with pytest.raises(PageFormatError):
            Page.from_bytes(b"\x00" * 10)

    def test_corrupt_slot_rejected(self):
        page = Page(128)
        page.insert(b"abcdef")
        image = bytearray(page.to_bytes())
        # Point the slot offset outside the page.
        image[PAGE_HEADER_SIZE] = 0xFF
        image[PAGE_HEADER_SIZE + 1] = 0xFF
        with pytest.raises(PageFormatError):
            Page.from_bytes(bytes(image))


class TestRecordsPerPage:
    def test_exact_capacity(self):
        capacity = records_per_page(256, 20)
        assert capacity == (256 - PAGE_HEADER_SIZE) // (20 + SLOT_SIZE)
        page = Page(256)
        for _ in range(capacity):
            page.insert(b"x" * 20)
        assert not page.fits(b"x" * 20)

    def test_record_too_big(self):
        with pytest.raises(PageFormatError):
            records_per_page(64, 100)

    def test_bad_record_size(self):
        with pytest.raises(PageFormatError):
            records_per_page(256, 0)


class TestPagePickling:
    def test_pickle_roundtrips_via_image(self):
        import pickle

        page = Page(256, page_id=9, page_type=PageType.INDEX_LEAF)
        for i in range(4):
            page.insert(f"row-{i}".encode())
        restored = pickle.loads(pickle.dumps(page))
        assert restored.page_id == 9
        assert restored.page_type is PageType.INDEX_LEAF
        assert list(restored.records()) == list(page.records())
        assert restored.used_bytes == page.used_bytes
        assert restored.page_size == page.page_size
