"""Unit tests for repro.compression.delta."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import BigIntType, IntegerType
from repro.compression.delta import DeltaEncoding, delta_stored_size
from repro.compression.registry import get_algorithm


def int_records(values: list[int], big: bool = False) -> tuple:
    dtype = BigIntType() if big else IntegerType()
    schema = Schema([Column("n", dtype)])
    return schema, [encode_record(schema, (v,)) for v in values]


class TestDeltaStoredSize:
    def test_first_value_full_cost(self):
        assert delta_stored_size(None, 7) == 1 + 1
        assert delta_stored_size(None, 70000) == 1 + 3

    def test_small_delta_cheap(self):
        assert delta_stored_size(1_000_000, 1_000_001) == 1 + 1
        assert delta_stored_size(1_000_000, 1_000_000) == 1 + 1

    def test_negative_delta(self):
        assert delta_stored_size(10, 5) == 1 + 1
        assert delta_stored_size(0, -200) == 1 + 2


class TestDeltaEncoding:
    def test_sorted_dense_keys_compress_hard(self):
        schema, records = int_records(list(range(10**6, 10**6 + 500)))
        block = DeltaEncoding().compress(records, schema)
        # First value 3+1 bytes, then 499 single-byte deltas + headers.
        assert block.payload_size == (1 + 3) + 499 * (1 + 1)
        # ~2 bytes/row vs 4 raw: comfortably under 60% of the raw size.
        assert block.payload_size < 500 * 4 * 0.6

    def test_roundtrip_sorted(self):
        schema, records = int_records(sorted([0, 5, 5, 7, 10**9, -3]))
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_roundtrip_unsorted(self):
        schema, records = int_records([100, -100, 2**30, 0, 17])
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_roundtrip_bigint(self):
        schema, records = int_records([2**60, 2**60 + 1, -(2**60)],
                                      big=True)
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_char_column_falls_back_to_ns(self):
        schema = single_char_schema(20)
        records = [encode_record(schema, (v,)) for v in ("abc", "de")]
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records
        assert block.payload_size == (3 + 1) + (2 + 1)

    def test_mixed_schema(self):
        schema = Schema([Column.of("s", "char(8)"),
                         Column.of("n", "integer")])
        rows = [("a", 100), ("b", 101), ("c", 99)]
        records = [encode_record(schema, row) for row in rows]
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            DeltaEncoding().compress([], single_char_schema(4))

    def test_registered(self):
        assert get_algorithm("delta").name == "delta"

    def test_truncated_blob_rejected(self):
        schema, records = int_records([1, 2, 3])
        algorithm = DeltaEncoding()
        block = algorithm.compress(records, schema)
        from repro.compression.base import (CompressedBlock,
                                            CompressedColumn)
        broken = CompressedBlock(
            algorithm=block.algorithm, row_count=3,
            columns=(CompressedColumn(block.columns[0].blob[:-1],
                                      block.columns[0].payload_size),))
        with pytest.raises(CompressionError):
            algorithm.decompress(broken, schema)


class TestDeltaTracker:
    def test_matches_compress_integers(self):
        schema, records = int_records([5, 6, 6, 100, 50])
        algorithm = DeltaEncoding()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size
        assert tracker.row_count == 5

    def test_matches_compress_mixed(self):
        schema = Schema([Column.of("s", "char(8)"),
                         Column.of("n", "integer")])
        rows = [("aa", 100), ("bbbb", 101), ("c", 350)]
        records = [encode_record(schema, row) for row in rows]
        algorithm = DeltaEncoding()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            slices = algorithm.columnize([record], schema)
            tracker.add([column[0] for column in slices])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_size_with_does_not_mutate(self):
        schema, records = int_records([1, 2])
        tracker = DeltaEncoding().make_tracker(schema)
        tracker.add([records[0]])
        preview = tracker.size_with([records[1]])
        assert tracker.size < preview
        tracker.add([records[1]])
        assert tracker.size == preview
