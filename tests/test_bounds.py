"""Unit tests for repro.core.bounds (Theorems 1-3, Example 1)."""

import math

import pytest

from repro.errors import EstimationError
from repro.core.bounds import (dict_large_d_bound, dict_small_d_bound,
                               example1, ns_stddev_bound,
                               ns_stddev_bound_range, ns_variance_bound,
                               resolve_sample_size, theorem2_minimum_n)


class TestResolveSampleSize:
    def test_explicit_r(self):
        assert resolve_sample_size(r=100) == 100

    def test_n_and_f(self):
        assert resolve_sample_size(n=1000, f=0.01) == 10

    def test_minimum_one(self):
        assert resolve_sample_size(n=10, f=0.001) == 1

    def test_fraction_above_one_rejected(self):
        with pytest.raises(EstimationError):
            resolve_sample_size(n=10, f=1.5)

    def test_underspecified_rejected(self):
        with pytest.raises(EstimationError):
            resolve_sample_size(n=10)
        with pytest.raises(EstimationError):
            resolve_sample_size(f=0.5)


class TestTheorem1:
    def test_variance_bound_formula(self):
        assert ns_variance_bound(r=100) == 1 / 400

    def test_stddev_is_sqrt_of_variance(self):
        assert ns_stddev_bound(r=100) == math.sqrt(ns_variance_bound(r=100))

    def test_paper_statement_form(self):
        """sigma <= (1/2) sqrt(1/(f n))."""
        n, f = 10**6, 0.01
        assert ns_stddev_bound(n=n, f=f) == \
            pytest.approx(0.5 * math.sqrt(1 / (f * n)))

    def test_bound_shrinks_with_r(self):
        assert ns_stddev_bound(r=10_000) < ns_stddev_bound(r=100)

    def test_range_bound_tighter(self):
        loose = ns_stddev_bound_range(100, 0.0, 1.0)
        tight = ns_stddev_bound_range(100, 0.3, 0.5)
        assert tight < loose
        assert loose == ns_stddev_bound(r=100)

    def test_range_validation(self):
        with pytest.raises(EstimationError):
            ns_stddev_bound_range(100, 0.8, 0.2)
        with pytest.raises(EstimationError):
            ns_stddev_bound_range(0, 0.0, 1.0)


class TestExample1:
    def test_paper_numbers(self):
        example = example1()
        assert example["n"] == 100_000_000
        assert example["r"] == 1_000_000
        assert example["f"] == 0.01
        assert example["stddev_bound"] == pytest.approx(0.0005)


class TestTheorem2:
    def test_bound_components(self):
        bound = dict_small_d_bound(n=10**6, d=100, k=20, p=2, f=0.01)
        assert bound.underestimate == pytest.approx(
            1 + 100 * 20 / (10**6 * 2))
        assert bound.overestimate == pytest.approx(
            1 + 100 * 20 / (0.01 * 10**6 * 2))
        assert bound.bound == bound.overestimate

    def test_bound_approaches_one_for_small_d(self):
        small = dict_small_d_bound(n=10**8, d=100, k=20, p=2, f=0.01)
        assert small.bound < 1.01

    def test_bound_grows_with_d(self):
        low = dict_small_d_bound(n=10**6, d=10, k=20, p=2, f=0.01)
        high = dict_small_d_bound(n=10**6, d=10**4, k=20, p=2, f=0.01)
        assert high.bound > low.bound

    def test_validation(self):
        with pytest.raises(EstimationError):
            dict_small_d_bound(n=0, d=1, k=1, p=1, f=0.5)
        with pytest.raises(EstimationError):
            dict_small_d_bound(n=10, d=1, k=1, p=1, f=1.5)

    def test_minimum_n_search(self):
        minimum = theorem2_minimum_n(
            lambda n: math.isqrt(n), k=20, p=2, f=0.01, epsilon=0.1)
        bound = dict_small_d_bound(minimum, math.isqrt(minimum), 20, 2,
                                   0.01)
        assert bound.bound <= 1.1

    def test_minimum_n_diverges_for_linear_d(self):
        with pytest.raises(EstimationError):
            theorem2_minimum_n(lambda n: n, k=2, p=2, f=0.01,
                               epsilon=0.01, n_limit=10**6)


class TestTheorem3:
    def test_constant_in_n(self):
        """The bound depends only on alpha, f, p/k — not on n."""
        bound = dict_large_d_bound(alpha=0.5, f=0.01, k=20, p=2)
        assert bound.bound > 1.0
        assert bound.bound < 15.0

    def test_decreases_with_alpha(self):
        low = dict_large_d_bound(alpha=0.1, f=0.01, k=20, p=2)
        high = dict_large_d_bound(alpha=0.9, f=0.01, k=20, p=2)
        assert high.bound < low.bound

    def test_alpha_one_small_bound(self):
        bound = dict_large_d_bound(alpha=1.0, f=0.1, k=20, p=2)
        assert bound.bound < 1.3

    def test_underestimate_dominates(self):
        bound = dict_large_d_bound(alpha=0.5, f=0.01, k=20, p=2)
        assert bound.bound == bound.underestimate
        assert bound.underestimate >= bound.overestimate

    def test_validation(self):
        with pytest.raises(EstimationError):
            dict_large_d_bound(alpha=1.5, f=0.01, k=20, p=2)
        with pytest.raises(EstimationError):
            dict_large_d_bound(alpha=0.5, f=0.0, k=20, p=2)
