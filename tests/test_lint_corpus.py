"""The historical-bug corpus: every shipped bug stays flagged.

Each fixture under ``tests/analysis_fixtures/`` reintroduces one bug
this repo actually shipped (PR 2 picklability/locking/frozen-mutation,
PR 3 address-repr store keys) and declares the rule codes the linter
must raise; negative twins assert the documented escape hatches
(suppression with rationale, ``__getstate__`` pair, content ``__repr__``,
``_locked`` suffix) stay silent. If a rule rots, the fixture for the
bug it was built from fails first.
"""

import pathlib

import pytest

from repro.analysis.corpus import check_corpus, check_fixture

CORPUS = pathlib.Path(__file__).parent / "analysis_fixtures"

EXPECTED_CODES = {
    "bug_entropy_reachable.py": ["RPL001"],
    "bug_pr2_frozen_mutation.py": ["RPL004"],
    "bug_pr2_lock_in_payload.py": ["RPL003", "RPL003"],
    "bug_pr2_unguarded_stats.py": ["RPL005"],
    "bug_pr3_address_repr_codec.py": ["RPL002"],
    "bug_suppression_discipline.py": ["RPL000", "RPL000", "RPL000"],
    "bug_swallowed_exception.py": ["RPL006"],
    "bug_wallclock_reachable.py": ["RPL001"],
    "ok_codec_with_repr.py": [],
    "ok_entropy_suppressed.py": [],
    "ok_guarded_stats.py": [],
    "ok_lock_with_getstate.py": [],
    "ok_swallow_with_counter.py": [],
    "ok_wallclock_exempt_module.py": [],
}


def test_corpus_covers_every_rule_code():
    flagged = {code for codes in EXPECTED_CODES.values()
               for code in codes}
    assert flagged == {"RPL000", "RPL001", "RPL002", "RPL003",
                       "RPL004", "RPL005", "RPL006"}


def test_corpus_matches_manifest():
    names = sorted(p.name for p in CORPUS.glob("*.py")
                   if p.name != "__init__.py")
    assert names == sorted(EXPECTED_CODES)


@pytest.mark.parametrize("name", sorted(EXPECTED_CODES))
def test_fixture_fires_exactly_its_declared_codes(name):
    outcome = check_fixture(CORPUS / name)
    assert outcome.ok, (f"missing={outcome.missing} "
                        f"unexpected={outcome.unexpected}")
    codes = sorted(f.code for f in outcome.result.findings)
    assert codes == sorted(EXPECTED_CODES[name])


def test_negative_fixtures_use_the_documented_escape_hatches():
    suppressed = check_fixture(CORPUS / "ok_entropy_suppressed.py")
    assert len(suppressed.result.suppressed) == 1
    assert suppressed.result.suppressed[0].code == "RPL001"


def test_check_corpus_sweeps_the_directory():
    outcomes = check_corpus(CORPUS)
    assert len(outcomes) == len(EXPECTED_CODES)
    assert all(outcome.ok for outcome in outcomes)


def test_check_corpus_rejects_empty_directories(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_corpus(tmp_path)
