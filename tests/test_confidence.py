"""Unit tests for repro.core.confidence."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sampling.rng import make_rng
from repro.sampling.row_samplers import WithReplacementSampler
from repro.storage.types import CharType
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.core.confidence import (ConfidenceInterval, bootstrap_cf_ci,
                                   ns_confidence_interval,
                                   ns_sample_size_for_width)
from repro.compression.null_suppression import NullSuppression


class TestConfidenceInterval:
    def test_contains(self):
        interval = ConfidenceInterval(0.5, 0.4, 0.6, 0.95, "test")
        assert interval.contains(0.45)
        assert not interval.contains(0.7)
        assert interval.width == pytest.approx(0.2)

    def test_malformed_rejected(self):
        with pytest.raises(EstimationError):
            ConfidenceInterval(0.9, 0.4, 0.6, 0.95, "test")


class TestNsConfidenceInterval:
    def test_basic_shape(self):
        interval = ns_confidence_interval(0.5, r=10_000)
        assert interval.low < 0.5 < interval.high
        assert interval.method == "normal_theorem1"

    def test_width_shrinks_with_r(self):
        wide = ns_confidence_interval(0.5, r=100)
        narrow = ns_confidence_interval(0.5, r=10_000)
        assert narrow.width < wide.width

    def test_clipping_to_feasible_range(self):
        interval = ns_confidence_interval(0.01, r=10)
        assert interval.low >= 0.0

    def test_range_knowledge_tightens(self):
        loose = ns_confidence_interval(0.5, r=100)
        tight = ns_confidence_interval(
            0.5, r=100, stored_fraction_range=(0.4, 0.6))
        assert tight.width < loose.width

    def test_invalid_r(self):
        with pytest.raises(EstimationError):
            ns_confidence_interval(0.5, r=0)

    def test_invalid_confidence(self):
        with pytest.raises(EstimationError):
            ns_confidence_interval(0.5, r=10, confidence=1.5)

    def test_coverage_is_conservative(self):
        """The Theorem 1 interval should cover the truth >= nominally."""
        dtype = CharType(20)
        values = [f"v{i}" + "y" * (i % 9) for i in range(40)]
        histogram = ColumnHistogram(dtype, values,
                                    np.arange(1, 41) * 25)
        truth = ns_cf(histogram)
        sampler = WithReplacementSampler()
        rng = make_rng(23)
        covered = 0
        trials = 200
        r = 200
        for _ in range(trials):
            sample = sampler.sample_histogram(histogram, r, rng)
            estimate = ns_cf(sample)
            if ns_confidence_interval(estimate, r,
                                      confidence=0.9).contains(truth):
                covered += 1
        assert covered / trials >= 0.9


class TestBootstrapCI:
    def test_interval_brackets_point(self):
        dtype = CharType(20)
        histogram = ColumnHistogram(
            dtype, [f"v{i}" + "z" * (i % 7) for i in range(30)],
            [10] * 30)
        sample = WithReplacementSampler().sample_histogram(
            histogram, 150, make_rng(1))
        interval = bootstrap_cf_ci(sample, NullSuppression(), n_boot=50,
                                   seed=2)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.method == "bootstrap_percentile"

    def test_too_few_replicates_rejected(self):
        dtype = CharType(8)
        histogram = ColumnHistogram(dtype, ["a"], [10])
        with pytest.raises(EstimationError):
            bootstrap_cf_ci(histogram, NullSuppression(), n_boot=3)

    def test_reproducible(self):
        dtype = CharType(8)
        histogram = ColumnHistogram(dtype, ["a", "bb", "ccc"],
                                    [10, 20, 30])
        first = bootstrap_cf_ci(histogram, NullSuppression(), n_boot=30,
                                seed=9)
        second = bootstrap_cf_ci(histogram, NullSuppression(), n_boot=30,
                                 seed=9)
        assert first == second


class TestSampleSizePlanning:
    def test_inversion(self):
        r = ns_sample_size_for_width(0.001, confidence=0.95)
        interval = ns_confidence_interval(0.5, r=r, confidence=0.95)
        assert interval.width / 2 <= 0.001 * 1.01

    def test_narrow_targets_need_more_rows(self):
        assert ns_sample_size_for_width(0.0001) > \
            ns_sample_size_for_width(0.01)

    def test_zero_spread_needs_one_row(self):
        assert ns_sample_size_for_width(
            0.01, stored_fraction_range=(0.5, 0.5)) == 1

    def test_invalid_target(self):
        with pytest.raises(EstimationError):
            ns_sample_size_for_width(0.0)
