"""Unit tests for page-level and global dictionary compression."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import IntegerType
from repro.compression.dictionary import (DictionaryCompression,
                                          pointer_bytes_for)
from repro.compression.global_dictionary import GlobalDictionaryCompression


def char_records(values: list[str], k: int = 20) -> tuple:
    schema = single_char_schema(k)
    return schema, [encode_record(schema, (v,)) for v in values]


class TestPointerBytes:
    def test_small_dictionaries(self):
        assert pointer_bytes_for(1) == 1
        assert pointer_bytes_for(2) == 1
        assert pointer_bytes_for(256) == 1

    def test_larger_dictionaries(self):
        assert pointer_bytes_for(257) == 2
        assert pointer_bytes_for(65536) == 2
        assert pointer_bytes_for(65537) == 3

    def test_invalid(self):
        with pytest.raises(CompressionError):
            pointer_bytes_for(0)


class TestPaperFigure1b:
    """Figure 1.b: repeated 'abcdefghij' stored once + pointers."""

    def test_repeated_value_stored_once(self):
        schema, records = char_records(["abcdefghij"] * 4)
        block = DictionaryCompression().compress(records, schema)
        # One 20-byte entry (fixed storage) + 4 pointers of 2 bytes.
        assert block.payload_size == 20 + 4 * 2

    def test_beats_uncompressed_when_repetitive(self):
        schema, records = char_records(["abcdefghij"] * 100)
        block = DictionaryCompression().compress(records, schema)
        assert block.payload_size < sum(len(r) for r in records)


class TestDictionaryCompression:
    def test_roundtrip(self):
        schema, records = char_records(
            ["aa", "bb", "aa", "cc", "bb", "aa", ""])
        algorithm = DictionaryCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_payload_formula_fixed_entries(self):
        values = ["a", "b", "c", "a", "b", "a"]
        schema, records = char_records(values)
        block = DictionaryCompression().compress(records, schema)
        assert block.payload_size == 3 * 20 + 6 * 2

    def test_payload_formula_ns_entries(self):
        values = ["a", "bb", "ccc", "a"]
        schema, records = char_records(values)
        algorithm = DictionaryCompression(entry_storage="null_suppressed")
        block = algorithm.compress(records, schema)
        assert block.payload_size == ((1 + 1) + (2 + 1) + (3 + 1)) + 4 * 2

    def test_roundtrip_ns_entries(self):
        schema, records = char_records(["xy", "xy", "z  z", ""])
        algorithm = DictionaryCompression(entry_storage="null_suppressed")
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_derived_pointer_width(self):
        values = [f"v{i}" for i in range(300)]
        schema, records = char_records(values)
        algorithm = DictionaryCompression(pointer_bytes=None)
        block = algorithm.compress(records, schema)
        assert block.payload_size == 300 * 20 + 300 * 2  # 300 > 256 -> 2B

    def test_derived_pointer_width_small(self):
        schema, records = char_records(["a", "b"] * 10)
        algorithm = DictionaryCompression(pointer_bytes=None)
        block = algorithm.compress(records, schema)
        assert block.payload_size == 2 * 20 + 20 * 1

    def test_pointer_overflow_rejected(self):
        values = [f"v{i}" for i in range(300)]
        schema, records = char_records(values)
        algorithm = DictionaryCompression(pointer_bytes=1)
        with pytest.raises(CompressionError):
            algorithm.compress(records, schema)

    def test_bad_parameters(self):
        with pytest.raises(CompressionError):
            DictionaryCompression(pointer_bytes=0)
        with pytest.raises(CompressionError):
            DictionaryCompression(entry_storage="weird")

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            DictionaryCompression().compress([], single_char_schema(5))

    def test_integer_column_roundtrip(self):
        schema = Schema([Column("n", IntegerType())])
        records = [encode_record(schema, (v,)) for v in (5, -5, 5, 999)]
        algorithm = DictionaryCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_multi_column_independent_dictionaries(self):
        schema = Schema([Column.of("a", "char(4)"),
                         Column.of("b", "char(4)")])
        records = [encode_record(schema, row)
                   for row in [("x", "p"), ("x", "q"), ("y", "p")]]
        block = DictionaryCompression().compress(records, schema)
        # Column a: 2 entries; column b: 2 entries; 3 pointers each.
        assert block.columns[0].payload_size == 2 * 4 + 3 * 2
        assert block.columns[1].payload_size == 2 * 4 + 3 * 2

    def test_tracker_matches_compress(self):
        values = ["aa", "bb", "aa", "cc", "cc", "dd"]
        schema, records = char_records(values)
        algorithm = DictionaryCompression()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_tracker_with_derived_pointer(self):
        values = [f"v{i}" for i in range(300)]
        schema, records = char_records(values)
        algorithm = DictionaryCompression(pointer_bytes=None)
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_tracker_size_with_preview(self):
        schema, records = char_records(["aa", "bb"])
        tracker = DictionaryCompression().make_tracker(schema)
        tracker.add([records[0]])
        preview_same = tracker.size_with([records[0]])
        preview_new = tracker.size_with([records[1]])
        assert preview_new - preview_same == 20  # new entry costs k


class TestGlobalDictionary:
    def test_scope(self):
        assert GlobalDictionaryCompression().scope == "index"
        assert DictionaryCompression().scope == "page"

    def test_simplified_model_formula(self):
        """CF_D = d/n + p/k with fixed entries on char(k)."""
        values = [f"u{i}" for i in range(10)] * 20  # d=10, n=200
        schema, records = char_records(values)
        block = GlobalDictionaryCompression().compress(records, schema)
        n, d, k, p = 200, 10, 20, 2
        assert block.payload_size == d * k + n * p
        cf = block.payload_size / (n * k)
        assert cf == pytest.approx(d / n + p / k)

    def test_roundtrip(self):
        schema, records = char_records(["m", "n", "m", "o"] * 10)
        algorithm = GlobalDictionaryCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_names(self):
        assert GlobalDictionaryCompression().name == "global_dictionary"
        assert GlobalDictionaryCompression(pointer_bytes=None).name == \
            "global_dictionary_derived"
