"""Property tests: B+-tree structural invariants under arbitrary
workloads."""

from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree

keys = st.integers(0, 500)
key_lists = st.lists(keys, min_size=0, max_size=300)


@settings(max_examples=50, deadline=None)
@given(data=key_lists)
def test_bulk_load_iterates_sorted(data):
    entries = [((key,), f"r{key}".encode()) for key in data]
    tree = BPlusTree.bulk_load(entries, page_size=128, max_fanout=4)
    tree.validate()
    assert [k[0] for k, _ in tree.items()] == sorted(data)


@settings(max_examples=50, deadline=None)
@given(data=key_lists)
def test_inserts_match_sorted(data):
    tree = BPlusTree(page_size=128, max_fanout=4)
    for key in data:
        tree.insert((key,), b"x" * (key % 17 + 1))
    tree.validate()
    assert [k[0] for k, _ in tree.items()] == sorted(data)


@settings(max_examples=50, deadline=None)
@given(initial=key_lists, extra=key_lists)
def test_bulk_then_insert(initial, extra):
    entries = [((key,), b"bulk") for key in initial]
    tree = BPlusTree.bulk_load(entries, page_size=128, max_fanout=4)
    for key in extra:
        tree.insert((key,), b"ins")
    tree.validate()
    assert [k[0] for k, _ in tree.items()] == sorted(initial + extra)


@settings(max_examples=50, deadline=None)
@given(data=key_lists, probe=keys)
def test_search_finds_all_duplicates(data, probe):
    tree = BPlusTree.bulk_load([((key,), b"v") for key in data],
                               page_size=128, max_fanout=4)
    assert len(tree.search((probe,))) == data.count(probe)


@settings(max_examples=50, deadline=None)
@given(data=key_lists, lo=keys, hi=keys)
def test_range_scan_matches_filter(data, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    tree = BPlusTree.bulk_load([((key,), b"v") for key in data],
                               page_size=128, max_fanout=4)
    scanned = [k[0] for k, _ in tree.range_scan((lo,), (hi,))]
    assert scanned == sorted(key for key in data if lo <= key <= hi)


@settings(max_examples=30, deadline=None)
@given(data=key_lists)
def test_leaf_pages_conserve_records(data):
    tree = BPlusTree.bulk_load([((key,), f"{key}".encode())
                                for key in data],
                               page_size=128, max_fanout=4)
    from_pages = []
    for page in tree.leaf_pages():
        from_pages.extend(page.records())
        assert page.used_bytes <= 128
    assert from_pages == [record for _, record in tree.items()]
