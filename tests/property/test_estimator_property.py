"""Property tests: estimator-level invariants for arbitrary multisets."""

import string

from hypothesis import given, settings, strategies as st

from repro.sampling.row_samplers import WithoutReplacementSampler
from repro.storage.types import CharType
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.core.metrics import ratio_error
from repro.core.samplecf import SampleCF
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression

K = 12

distinct_values = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=K),
    min_size=1, max_size=25, unique=True)


@st.composite
def histograms(draw):
    values = draw(distinct_values)
    counts = draw(st.lists(st.integers(1, 200), min_size=len(values),
                           max_size=len(values)))
    return ColumnHistogram(CharType(K), values, counts)


@settings(max_examples=50, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31))
def test_full_sample_without_replacement_is_exact(histogram, seed):
    estimator = SampleCF(NullSuppression(),
                         sampler=WithoutReplacementSampler())
    estimate = estimator.estimate_histogram(histogram, 1.0, seed=seed)
    assert estimate.estimate == ns_cf(histogram)


@settings(max_examples=50, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31),
       fraction=st.floats(0.05, 1.0))
def test_estimates_stay_in_feasible_range(histogram, seed, fraction):
    ns = SampleCF(NullSuppression()).estimate_histogram(
        histogram, fraction, seed=seed)
    assert 0 < ns.estimate <= (K + 1) / K
    dictionary = SampleCF(GlobalDictionaryCompression()).estimate_histogram(
        histogram, fraction, seed=seed)
    assert 0 < dictionary.estimate <= 1 + 2 / K


@settings(max_examples=50, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31),
       fraction=st.floats(0.05, 1.0))
def test_deterministic_small_d_bound_holds_always(histogram, seed,
                                                  fraction):
    """The Theorem 2 bound is deterministic: no sample can break it."""
    from repro.core.bounds import dict_small_d_bound
    from repro.core.cf_models import global_dictionary_cf

    estimator = SampleCF(GlobalDictionaryCompression())
    estimate = estimator.estimate_histogram(histogram, fraction,
                                            seed=seed)
    truth = global_dictionary_cf(histogram)
    # The theorem's derivation bounds CF'/CF in terms of the drawn
    # sample size r; rows_for_fraction rounds r = f*n to nearest, so
    # the deterministic claim holds for the *effective* fraction r/n
    # (the nominal f can under-report r by up to half a row, which at
    # tiny r makes the nominal bound violable).
    effective = estimate.sample_rows / histogram.n
    bound = dict_small_d_bound(histogram.n, histogram.d, K, 2,
                               effective).bound
    assert ratio_error(truth, estimate.estimate) <= bound + 1e-9


@settings(max_examples=50, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31))
def test_sample_distinct_never_exceeds_population(histogram, seed):
    estimator = SampleCF(GlobalDictionaryCompression())
    estimate = estimator.estimate_histogram(histogram, 0.5, seed=seed)
    assert 1 <= estimate.sample_distinct <= histogram.d


@settings(max_examples=30, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31))
def test_ratio_error_symmetric_and_at_least_one(histogram, seed):
    estimator = SampleCF(NullSuppression())
    estimate = estimator.estimate_histogram(histogram, 0.3, seed=seed)
    truth = ns_cf(histogram)
    error = ratio_error(truth, estimate.estimate)
    assert error >= 1.0
    assert error == ratio_error(estimate.estimate, truth)
