"""Property: what-if pruning is sound across workloads and executors.

The lazy :class:`~repro.advisor.whatif.WhatIfAdvisor` skips estimating
candidates whose Theorem 1/2 CF bounds exclude them from winning a
greedy round. The properties locked in here, over hypothesis-generated
workloads with fixed seeds:

1. **Selection parity** — the lazy advisor selects the *bit-identical*
   design (candidates, sizes, steps, costs) as the eager
   :func:`advise_from_data`, on the serial, thread, and process
   executors alike.
2. **Pruning soundness** — every candidate the lazy advisor committed
   ran the full trial budget; every candidate it skipped or stopped
   early is absent from the eager design (so no pruned candidate would
   have won); and every bound it pruned on actually contained the
   eager estimate it claimed to bracket.
3. **Spend accounting** — engine trial units reconcile exactly with
   the report (``units == K * T - saved``).

``derandomize=True`` pins hypothesis's example stream: the suite is
deterministic in CI, so a pass is a reproducible guarantee rather than
a sampled one.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workloads.generators import make_multicolumn_table
from repro.advisor import (CostModel, Query, WhatIfAdvisor,
                           advise_from_data)

PAGE = 1024
MASTER_SEED = 60_100

ALGORITHM_POOL = ("null_suppression", "dictionary", "global_dictionary",
                  "rle")

SLOW_SETTINGS = settings(
    max_examples=10, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])


@st.composite
def workloads(draw):
    """A small but varied physical-design problem."""
    num_tables = draw(st.integers(1, 2))
    tables = {}
    queries = []
    for t in range(num_tables):
        name = f"t{t}"
        num_columns = draw(st.integers(1, 3))
        specs = []
        for c in range(num_columns):
            k = draw(st.integers(6, 20))
            d = draw(st.integers(2, 60))
            specs.append((f"c{c}", k, d))
        n = draw(st.integers(200, 700))
        table_seed = draw(st.integers(0, 10_000))
        tables[name] = make_multicolumn_table(
            name, n, specs, page_size=PAGE, seed=table_seed)
        num_queries = draw(st.integers(1, 2))
        for q in range(num_queries):
            width = draw(st.integers(1, num_columns))
            columns = tuple(f"c{c}" for c in range(width))
            queries.append(Query(
                name=f"{name}_q{q}", table=name, columns=columns,
                selectivity=draw(st.sampled_from(
                    (0.02, 0.1, 0.3, 1.0))),
                weight=draw(st.sampled_from((1.0, 2.0, 8.0)))))
    algorithms = draw(st.lists(st.sampled_from(ALGORITHM_POOL),
                               min_size=1, max_size=3, unique=True))
    trials = draw(st.integers(1, 3))
    fraction = draw(st.sampled_from((0.1, 0.2)))
    bound_factor = draw(st.sampled_from((0.05, 0.3, 0.8, 2.0)))
    total_plain = sum(
        table.num_rows
        * (sum(column.dtype.fixed_size
               for column in table.schema.columns) + 8)
        for table in tables.values())
    bound = max(1.0, bound_factor * total_plain)
    seed = draw(st.integers(0, 2 ** 31))
    return tables, queries, algorithms, trials, fraction, bound, seed


def eager_design(tables, queries, algorithms, trials, fraction, bound,
                 seed, executor=None):
    return advise_from_data(
        tables, queries, bound, algorithms=algorithms,
        fraction=fraction, trials=trials, model=CostModel(PAGE),
        seed=seed, executor=executor)


def lazy_advisor(tables, queries, algorithms, trials, fraction, seed,
                 executor=None, **kwargs):
    return WhatIfAdvisor(
        tables, queries, algorithms=algorithms, fraction=fraction,
        max_trials=trials, model=CostModel(PAGE), seed=seed,
        executor=executor, **kwargs)


def check_soundness(eager, lazy, advisor, trials):
    # 1. Bit-identical selection.
    assert lazy.chosen == eager.chosen
    assert lazy.steps == eager.steps
    assert lazy.bytes_used == eager.bytes_used
    assert lazy.cost_after == eager.cost_after
    # 2a. Winners always ran the full budget.
    report = lazy.report
    for candidate in lazy.chosen:
        if candidate.compressed:
            assert report.trials_by_candidate[candidate.name] == trials
    # 2b. Skipped / early-stopped candidates lost in the eager run too.
    eager_names = {candidate.name for candidate in eager.chosen}
    for name, ran in report.trials_by_candidate.items():
        if ran < trials:
            assert name not in eager_names
    # 2c. Every pruning interval was valid: it contained the eager
    # estimate of the candidate it excluded.
    eager_cf = {}
    for state in advisor.states:
        if state.compressed and state.trials_run >= trials:
            eager_cf[state.name] = state.mean()
    for event in report.prune_events:
        if event.candidate in eager_cf:
            value = eager_cf[event.candidate]
            assert event.cf_low <= value <= event.cf_high
    # 3. Spend accounting.
    assert report.units_executed <= report.units_eager
    assert sum(report.trials_by_candidate.values()) == \
        report.units_executed


class TestWhatIfSoundness:
    @SLOW_SETTINGS
    @given(problem=workloads())
    def test_serial_parity_and_soundness(self, problem):
        tables, queries, algorithms, trials, fraction, bound, seed = \
            problem
        eager = eager_design(tables, queries, algorithms, trials,
                             fraction, bound, seed)
        advisor = lazy_advisor(tables, queries, algorithms, trials,
                               fraction, seed)
        lazy = advisor.advise(bound)
        check_soundness(eager, lazy, advisor, trials)
        # The engine ran exactly what the report claims.
        stats = advisor.engine.stats.snapshot()
        assert stats["trials"] == report_units(lazy)
        assert stats["trials"] == \
            lazy.report.compressed_candidates * trials \
            - stats["whatif_trials_saved"]

    @SLOW_SETTINGS
    @given(problem=workloads())
    def test_deterministic_bounds_only(self, problem):
        """With probabilistic intervals off, parity is unconditional."""
        tables, queries, algorithms, trials, fraction, bound, seed = \
            problem
        eager = eager_design(tables, queries, algorithms, trials,
                             fraction, bound, seed)
        advisor = lazy_advisor(tables, queries, algorithms, trials,
                               fraction, seed, use_probabilistic=False)
        lazy = advisor.advise(bound)
        check_soundness(eager, lazy, advisor, trials)
        assert all(event.deterministic
                   for event in lazy.report.prune_events)

    @settings(max_examples=4, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(problem=workloads())
    def test_thread_executor_parity(self, problem):
        tables, queries, algorithms, trials, fraction, bound, seed = \
            problem
        eager = eager_design(tables, queries, algorithms, trials,
                             fraction, bound, seed)
        advisor = lazy_advisor(tables, queries, algorithms, trials,
                               fraction, seed, executor="threads")
        lazy = advisor.advise(bound)
        check_soundness(eager, lazy, advisor, trials)


def report_units(lazy):
    return lazy.report.units_executed


@pytest.fixture(scope="module")
def fixed_problem():
    tables = {
        "orders": make_multicolumn_table(
            "orders", 900, [("status", 10, 5), ("customer", 24, 150)],
            page_size=PAGE, seed=61),
        "parts": make_multicolumn_table(
            "parts", 600, [("sku", 20, 80)], page_size=PAGE, seed=62),
    }
    queries = [
        Query("q_status", "orders", ("status",), selectivity=0.2,
              weight=8),
        Query("q_customer", "orders", ("customer",), selectivity=0.05,
              weight=4),
        Query("q_sku", "parts", ("sku",), selectivity=0.1, weight=2),
    ]
    return tables, queries


class TestExecutorParity:
    """The same lazy run is bit-identical on every executor.

    The refinement batches carry resolved integer seeds, so executor
    choice can only change scheduling, never estimates — and therefore
    never the selected design or the spend report's unit totals.
    """

    BOUND = 60_000
    TRIALS = 3
    ALGORITHMS = ["null_suppression", "dictionary"]

    def run(self, fixed_problem, executor):
        tables, queries = fixed_problem
        advisor = lazy_advisor(tables, queries, self.ALGORITHMS,
                               self.TRIALS, 0.1, MASTER_SEED,
                               executor=executor)
        result = advisor.advise(self.BOUND)
        return result, advisor

    @pytest.mark.parametrize("executor", ["serial", "threads",
                                          "process"])
    def test_matches_eager_on_every_executor(self, fixed_problem,
                                             executor):
        tables, queries = fixed_problem
        eager = eager_design(tables, queries, self.ALGORITHMS,
                             self.TRIALS, 0.1, self.BOUND, MASTER_SEED)
        lazy, advisor = self.run(fixed_problem, executor)
        check_soundness(eager, lazy, advisor, self.TRIALS)

    def test_executors_agree_with_each_other(self, fixed_problem):
        serial, _ = self.run(fixed_problem, "serial")
        threads, _ = self.run(fixed_problem, "threads")
        process, _ = self.run(fixed_problem, "process")
        for other in (threads, process):
            assert other.chosen == serial.chosen
            assert other.steps == serial.steps
            assert other.report.units_executed == \
                serial.report.units_executed
            assert other.report.trials_by_candidate == \
                serial.report.trials_by_candidate
