"""Property tests: slotted-page serialisation and accounting."""

from hypothesis import given, settings, strategies as st

from repro.constants import PAGE_HEADER_SIZE, SLOT_SIZE
from repro.storage.page import Page, PageType

records = st.lists(st.binary(min_size=0, max_size=40), min_size=0,
                   max_size=20)


def fill_page(page: Page, data: list[bytes]) -> list[bytes]:
    stored = []
    for record in data:
        if page.fits(record):
            page.insert(record)
            stored.append(record)
    return stored


@settings(max_examples=80, deadline=None)
@given(data=records)
def test_accounting_invariant(data):
    page = Page(256)
    stored = fill_page(page, data)
    assert page.slot_count == len(stored)
    assert page.payload_bytes == sum(len(record) for record in stored)
    assert page.used_bytes == PAGE_HEADER_SIZE \
        + SLOT_SIZE * len(stored) + page.payload_bytes
    assert page.free_bytes >= 0
    assert page.used_bytes + page.free_bytes == 256


@settings(max_examples=80, deadline=None)
@given(data=records,
       page_id=st.integers(0, 2**32 - 1),
       page_type=st.sampled_from(list(PageType)))
def test_serialisation_roundtrip(data, page_id, page_type):
    page = Page(512, page_id=page_id, page_type=page_type)
    stored = fill_page(page, data)
    parsed = Page.from_bytes(page.to_bytes())
    assert parsed.page_id == page_id
    assert parsed.page_type is page_type
    assert list(parsed.records()) == stored
    assert parsed.used_bytes == page.used_bytes


@settings(max_examples=80, deadline=None)
@given(data=records)
def test_image_always_page_sized(data):
    page = Page(256)
    fill_page(page, data)
    assert len(page.to_bytes()) == 256


@settings(max_examples=80, deadline=None)
@given(data=records)
def test_slot_order_is_insert_order(data):
    page = Page(512)
    stored = fill_page(page, data)
    assert [page.get(slot) for slot in range(len(stored))] == stored
