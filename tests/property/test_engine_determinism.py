"""Property: engine batches are deterministic under re-execution.

The engine's contract: with an integer master seed, the same batch
*content* yields byte-identical results regardless of

* executor choice (serial vs. thread pool vs. process pool vs. remote
  worker sockets — process and remote additionally round-trip every
  unit through pickle),
* remote faults (a worker dying mid-shard, every worker unreachable),
* request submission order,
* cache state (cold vs. warm, shared vs. private engines),
* object identity (sources rebuilt from the same generator seeds).

This is what lets experiments mix executors freely and lets any
reported number be replayed from its spec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generators import make_histogram, make_table
from repro.engine import (EstimationEngine, EstimationRequest,
                          ProcessPoolPlanExecutor, RemotePlanExecutor,
                          SerialExecutor, ThreadPoolPlanExecutor)
from repro.engine.remote import start_worker_thread

MASTER_SEED = 20100301

ALGORITHMS = ("null_suppression", "global_dictionary", "rle", "page")
#: Algorithms with a closed-form histogram model (page has none).
MODELABLE = ("null_suppression", "global_dictionary", "rle")
FRACTIONS = (0.02, 0.05)


def build_requests() -> list[EstimationRequest]:
    """A mixed batch over freshly built sources (new objects each call)."""
    table = make_table(n=3000, d=60, k=20, distribution="zipf",
                      order="shuffled", page_size=1024, seed=77)
    histogram = make_histogram(9000, 90, 20, seed=78)
    requests = []
    for algorithm in ALGORITHMS:
        for fraction in FRACTIONS:
            requests.append(EstimationRequest(
                table=table, columns=("a",), algorithm=algorithm,
                fraction=fraction, trials=3, page_size=512))
            if algorithm in MODELABLE:
                requests.append(EstimationRequest(
                    histogram=histogram, algorithm=algorithm,
                    fraction=fraction, trials=3))
    # An explicit-seed request and a duplicate of an earlier one.
    requests.append(EstimationRequest(
        table=table, columns=("a",), algorithm="null_suppression",
        fraction=0.05, trials=2, seed=1234, page_size=512))
    requests.append(EstimationRequest(
        histogram=histogram, algorithm="rle", fraction=0.02, trials=3))
    return requests


def fingerprint(batch) -> list[tuple]:
    """Everything observable about a batch result, bit-for-bit."""
    out = []
    for result in batch.results:
        for estimate in result.estimates:
            out.append((
                result.request.algorithm.name,
                result.request.fraction,
                estimate.estimate,
                estimate.sample_rows,
                estimate.sample_distinct,
                estimate.uncompressed_sample_bytes,
                estimate.compressed_sample_bytes,
                tuple(sorted(estimate.details.items())),
            ))
    return out


def run(executor, order_seed: int | None):
    engine = EstimationEngine(seed=MASTER_SEED, executor=executor)
    requests = build_requests()
    order = np.arange(len(requests))
    if order_seed is not None:
        np.random.default_rng(order_seed).shuffle(order)
    batch = engine.execute([requests[i] for i in order])
    # Undo the permutation so fingerprints align by original position.
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    results = [batch.results[i] for i in inverse]
    return [entry
            for position in range(len(results))
            for entry in fingerprint(
                type(batch)(results=(results[position],), stats={}))]


@pytest.fixture(scope="module")
def reference():
    return run(SerialExecutor(), order_seed=None)


class TestEngineDeterminism:
    def test_serial_rerun_identical(self, reference):
        assert run(SerialExecutor(), order_seed=None) == reference

    @pytest.mark.parametrize("workers", [2, 5])
    def test_thread_pool_matches_serial(self, reference, workers):
        assert run(ThreadPoolPlanExecutor(workers),
                   order_seed=None) == reference

    @pytest.mark.parametrize("order_seed", [1, 2, 3])
    def test_submission_order_irrelevant(self, reference, order_seed):
        assert run(SerialExecutor(), order_seed=order_seed) == reference

    def test_shuffled_threaded_matches_serial(self, reference):
        assert run(ThreadPoolPlanExecutor(4), order_seed=9) == reference

    def test_process_pool_matches_serial(self, reference):
        """Units survive pickling to workers and replay bit-identically."""
        assert run(ProcessPoolPlanExecutor(2),
                   order_seed=None) == reference

    def test_shuffled_process_matches_serial(self, reference):
        assert run(ProcessPoolPlanExecutor(2), order_seed=5) == reference

    def test_rebuilt_sources_replay(self, reference):
        """New source objects with identical content replay exactly."""
        assert run(SerialExecutor(), order_seed=None) == reference

    def test_warm_cache_replay(self):
        engine = EstimationEngine(seed=MASTER_SEED)
        requests = build_requests()
        cold = engine.execute(requests)
        warm = engine.execute(requests)
        assert fingerprint(cold) == fingerprint(warm)
        assert warm.stats["samples_materialized"] == 0

    def test_different_master_seeds_differ(self):
        one = EstimationEngine(seed=1).execute(build_requests())
        two = EstimationEngine(seed=2).execute(build_requests())
        assert fingerprint(one) != fingerprint(two)


class TestRemoteDeterminism:
    """The remote executor is an executor, not a different estimator."""

    def _workers(self, count, **kwargs):
        started = [start_worker_thread(**kwargs) for _ in range(count)]
        addresses = [address for address, _ in started]
        shutdowns = [shutdown for _, shutdown in started]
        return addresses, shutdowns

    def test_remote_matches_serial(self, reference):
        """Three socket workers, shuffled submission: bit-identical."""
        addresses, shutdowns = self._workers(3)
        try:
            executor = RemotePlanExecutor(workers=addresses,
                                          chunk_units=2)
            assert run(executor, order_seed=None) == reference
            assert run(executor, order_seed=11) == reference
        finally:
            for shutdown in shutdowns:
                shutdown()

    def test_remote_round_robin_matches_serial(self, reference):
        addresses, shutdowns = self._workers(3)
        try:
            executor = RemotePlanExecutor(workers=addresses,
                                          scheduler="round_robin",
                                          chunk_units=3)
            assert run(executor, order_seed=None) == reference
        finally:
            for shutdown in shutdowns:
                shutdown()

    def test_worker_killed_mid_run_identical(self, reference):
        """One worker dies mid-shard; survivors absorb its units."""
        dying, kill_dying = start_worker_thread(fail_after_units=5)
        addresses, shutdowns = self._workers(2)
        executor = RemotePlanExecutor(workers=[dying] + addresses,
                                      chunk_units=2)
        engine = EstimationEngine(seed=MASTER_SEED, executor=executor)
        try:
            batch = engine.execute(build_requests())
            serial = EstimationEngine(
                seed=MASTER_SEED, executor=SerialExecutor(),
            ).execute(build_requests())
            assert fingerprint(batch) == fingerprint(serial)
            assert batch.stats["remote_worker_failures"] >= 1
            assert batch.stats["remote_retried_units"] >= 1
            # The survivors, not the local fallback, absorbed the loss.
            assert batch.stats["remote_fallback_units"] == 0
        finally:
            kill_dying()
            for shutdown in shutdowns:
                shutdown()

    def test_all_workers_down_falls_back_identical(self, reference):
        """Unreachable workers degrade to the local pool, same numbers."""
        address, shutdown = start_worker_thread()
        shutdown()  # nothing listens here any more
        executor = RemotePlanExecutor(workers=[address],
                                      connect_timeout=0.5,
                                      max_local_workers=2)
        engine = EstimationEngine(seed=MASTER_SEED, executor=executor)
        batch = engine.execute(build_requests())
        serial = EstimationEngine(
            seed=MASTER_SEED, executor=SerialExecutor(),
        ).execute(build_requests())
        assert fingerprint(batch) == fingerprint(serial)
        assert batch.stats["remote_fallback_units"] > 0
        assert batch.stats["remote_units"] == 0


class TestTracedDeterminism:
    """Tracing observes the run; it must never perturb the numbers.

    The ``--trace`` contract: estimates are bit-identical with tracing
    on or off, on every executor — the tracer only ever *reads* the
    execution (span timestamps live in ``repro.obs``, outside the unit
    path the entropy linter audits).
    """

    def _traced(self, executor, tmp_path):
        from repro.obs import Tracer, read_trace

        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(path)
        engine = EstimationEngine(seed=MASTER_SEED, executor=executor,
                                  tracer=tracer)
        batch = engine.execute(build_requests())
        tracer.close()
        return batch, read_trace(path)

    def test_traced_serial_identical(self, reference, tmp_path):
        batch, records = self._traced(SerialExecutor(), tmp_path)
        assert fingerprint(batch) == reference
        assert any(r.get("name") == "unit.run" for r in records)

    def test_traced_process_identical(self, reference, tmp_path):
        batch, records = self._traced(ProcessPoolPlanExecutor(2),
                                      tmp_path)
        assert fingerprint(batch) == reference
        # Worker-side spans came home across the pickle boundary.
        assert any(r.get("adopted") for r in records)

    def test_traced_remote_identical(self, reference, tmp_path):
        started = [start_worker_thread() for _ in range(2)]
        try:
            executor = RemotePlanExecutor(
                workers=[address for address, _ in started],
                chunk_units=2)
            batch, records = self._traced(executor, tmp_path)
            assert fingerprint(batch) == reference
            assert any(r.get("name") == "chunk.run" for r in records)
        finally:
            for _, shutdown in started:
                shutdown()
