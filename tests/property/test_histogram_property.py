"""Property tests: histogram invariants and sampler mass conservation."""

import string

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.sampling.rng import make_rng
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithoutReplacementSampler,
                                         WithReplacementSampler)
from repro.storage.types import CharType
from repro.core.cf_models import (ColumnHistogram, global_dictionary_cf,
                                  ns_cf, paged_dictionary_cf)

K = 12

distinct_values = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1,
            max_size=K),
    min_size=1, max_size=30, unique=True)


@st.composite
def histograms(draw):
    values = draw(distinct_values)
    counts = draw(st.lists(st.integers(1, 500), min_size=len(values),
                           max_size=len(values)))
    return ColumnHistogram(CharType(K), values, counts)


@settings(max_examples=60, deadline=None)
@given(histogram=histograms())
def test_mass_and_distinct_counts(histogram):
    assert histogram.n == int(histogram.counts.sum())
    assert histogram.d == len(histogram.values)
    assert histogram.total_bytes == histogram.n * K


@settings(max_examples=60, deadline=None)
@given(histogram=histograms())
def test_frequency_of_frequencies_conserves(histogram):
    freqs = histogram.frequency_of_frequencies()
    assert sum(freqs.values()) == histogram.d
    assert sum(j * count for j, count in freqs.items()) == histogram.n


@settings(max_examples=60, deadline=None)
@given(histogram=histograms())
def test_cf_bounds(histogram):
    """CF_NS in (0, (k+c)/k]; CF_D in (0, 1 + p/k]."""
    ns = ns_cf(histogram)
    assert 0 < ns <= (K + 1) / K
    dictionary = global_dictionary_cf(histogram, pointer_bytes=2)
    assert 0 < dictionary <= 1 + 2 / K


@settings(max_examples=60, deadline=None)
@given(histogram=histograms())
def test_paged_dictionary_at_least_global(histogram):
    paged = paged_dictionary_cf(histogram, page_size=256)
    simple = global_dictionary_cf(histogram, pointer_bytes=2)
    assert paged >= simple - 1e-12


@settings(max_examples=60, deadline=None)
@given(histogram=histograms())
def test_sorted_is_permutation(histogram):
    ordered = histogram.sorted_by_value()
    assert sorted(ordered.values) == list(ordered.values)
    assert set(zip(ordered.values, ordered.counts.tolist())) == \
        set(zip(histogram.values, histogram.counts.tolist()))


@settings(max_examples=40, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31),
       fraction=st.floats(0.05, 1.0))
def test_with_replacement_sample_mass(histogram, seed, fraction):
    r = max(1, round(fraction * histogram.n))
    sample = WithReplacementSampler().sample_histogram(
        histogram, r, make_rng(seed))
    assert sample.n == r
    assert set(sample.values).issubset(set(histogram.values))


@settings(max_examples=40, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31),
       fraction=st.floats(0.05, 1.0))
def test_without_replacement_never_exceeds_counts(histogram, seed,
                                                  fraction):
    r = max(1, round(fraction * histogram.n))
    assume(r <= histogram.n)
    sample = WithoutReplacementSampler().sample_histogram(
        histogram, r, make_rng(seed))
    assert sample.n == r
    originals = dict(zip(histogram.values, histogram.counts.tolist()))
    for value, count in zip(sample.values, sample.counts.tolist()):
        assert count <= originals[value]


@settings(max_examples=40, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31))
def test_bernoulli_thinning_bounded(histogram, seed):
    sample = BernoulliSampler(0.5).sample_histogram(
        histogram, 0, make_rng(seed))
    originals = dict(zip(histogram.values, histogram.counts.tolist()))
    for value, count in zip(sample.values, sample.counts.tolist()):
        assert count <= originals[value]


@settings(max_examples=40, deadline=None)
@given(histogram=histograms(), seed=st.integers(0, 2**31))
def test_expand_conserves_multiset(histogram, seed):
    expanded = histogram.expand("shuffled", seed=seed)
    assert len(expanded) == histogram.n
    counts = {}
    for value in expanded:
        counts[value] = counts.get(value, 0) + 1
    assert counts == dict(zip(histogram.values,
                              (int(c) for c in histogram.counts)))
