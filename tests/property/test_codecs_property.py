"""Property tests: every compression codec is exactly invertible and its
payload accounting is consistent."""

import string

from hypothesis import given, settings, strategies as st

from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import CharType, IntegerType
from repro.compression.delta import DeltaEncoding
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.compression.page_compression import PageCompression
from repro.compression.prefix import PrefixCompression
from repro.compression.rle import RunLengthEncoding

K = 16

#: Text values storable in CHAR(16): latin-1, no trailing blanks wider
#: than the column. Trailing blanks are canonicalised by CHAR semantics,
#: so generate values without them to make round trips exact.
char_values = st.text(
    alphabet=string.ascii_letters + string.digits + " 0\x1b",
    min_size=0, max_size=K,
).map(lambda s: s.rstrip(" "))

value_lists = st.lists(char_values, min_size=1, max_size=40)

ALGORITHMS = [
    NullSuppression(),
    NullSuppression(mode="runs"),
    DictionaryCompression(),
    DictionaryCompression(pointer_bytes=None),
    DictionaryCompression(entry_storage="null_suppressed"),
    GlobalDictionaryCompression(),
    RunLengthEncoding(),
    PrefixCompression(),
    PageCompression(),
    DeltaEncoding(),
]


def records_of(values: list[str]) -> tuple:
    schema = single_char_schema(K)
    return schema, [encode_record(schema, (value,)) for value in values]


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_char_roundtrip_all_algorithms(values):
    schema, records = records_of(values)
    for algorithm in ALGORITHMS:
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records, \
            algorithm.name


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_payload_not_larger_than_serialized_plus_headers(values):
    """payload_size counts data; blobs add only self-description."""
    schema, records = records_of(values)
    for algorithm in ALGORITHMS:
        block = algorithm.compress(records, schema)
        assert block.payload_size >= 0
        assert block.row_count == len(records)


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_ns_payload_formula(values):
    """NS payload == sum(l_i + 1) exactly, for any value multiset."""
    schema, records = records_of(values)
    block = NullSuppression().compress(records, schema)
    expected = sum(len(value.encode("latin-1")) + 1 for value in values)
    assert block.payload_size == expected


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_dictionary_payload_formula(values):
    """Dictionary payload == d*K + n*p exactly, for any multiset."""
    schema, records = records_of(values)
    block = DictionaryCompression().compress(records, schema)
    distinct = len(set(values))
    assert block.payload_size == distinct * K + len(values) * 2


@settings(max_examples=40, deadline=None)
@given(values=value_lists)
def test_trackers_match_compress(values):
    """Incremental size trackers agree with one-shot compression."""
    schema, records = records_of(values)
    for algorithm in ALGORITHMS:
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size, algorithm.name


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(-2**31, 2**31 - 1), min_size=1,
                       max_size=30))
def test_integer_roundtrip(values):
    schema = Schema([Column("n", IntegerType())])
    records = [encode_record(schema, (value,)) for value in values]
    for algorithm in ALGORITHMS:
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records, \
            algorithm.name


@settings(max_examples=40, deadline=None)
@given(values=value_lists,
       numbers=st.lists(st.integers(-10**6, 10**6), min_size=1,
                        max_size=30))
def test_multicolumn_roundtrip(values, numbers):
    size = min(len(values), len(numbers))
    schema = Schema([Column("s", CharType(K)),
                     Column("n", IntegerType())])
    records = [encode_record(schema, (values[i], numbers[i]))
               for i in range(size)]
    if not records:
        return
    for algorithm in ALGORITHMS:
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records, \
            algorithm.name


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_sorted_rle_never_beaten_by_shuffled(values):
    """RLE on sorted input never uses more bytes than any permutation."""
    schema, records = records_of(sorted(values))
    sorted_block = RunLengthEncoding().compress(records, schema)
    schema, shuffled = records_of(values)
    shuffled_block = RunLengthEncoding().compress(shuffled, schema)
    assert sorted_block.payload_size <= shuffled_block.payload_size
