"""Chaos property suite: injected faults never corrupt an estimate.

The global invariant (ISSUE 9, acceptance criterion): for *any*
injected fault sequence, a batch either yields results bit-identical
to the fault-free run or reports typed degradations — never a wrong
number, a hang, or a lost unit. Hypothesis generates seeded fault
plans (``derandomize=True`` pins the example stream, so CI replays the
identical schedules); every plan is itself content-fingerprinted, so
a failing example reproduces from its repr alone.

Three executor surfaces, each with the fault classes that can reach
it in-process:

* serial — store read/write/lock faults against a warm store;
* process pool — worker death (``pool.unit`` crash, a real
  ``os._exit``) delivered through the ``REPRO_FAULT_PLAN`` env hook;
* fake-remote — socket drops and delays on the send/recv sides.

Plus the store crash-consistency torture: a writer killed mid-``put``
at *every byte offset* of the envelope must leave a store that reads
clean-or-miss, never torn (in-process ``torn`` faults for the full
sweep, real ``os._exit(32)`` subprocesses for spot checks).
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import InjectedFault
from repro.engine import (EstimationEngine, EstimationRequest,
                          PartialBatchResult, ProcessPoolPlanExecutor,
                          RemotePlanExecutor)
from repro.engine.remote import start_worker_thread
from repro.engine.samples import materialize_table_sample
from repro.faults import (FAULT_PLAN_ENV, FaultInjector, FaultPlan,
                          FaultSpec, NULL_INJECTOR)
from repro.sampling.row_samplers import WithReplacementSampler
from repro.store import SampleStore, digest_parts
from repro.workloads.generators import make_table

MASTER_SEED = 20260808

CHAOS_SETTINGS = settings(
    max_examples=12, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.function_scoped_fixture])

#: (site, kind) pairs that are safe to fire in the test process
#: itself: they raise catchable errors or perturb blobs, never
#: ``os._exit``.  ``torn``/``crash`` writes and ``pool.unit`` crashes
#: simulate process death and get their own harnesses below.
IN_PROCESS_FAULTS = (
    ("store.read", "error"),
    ("store.read", "corrupt"),
    ("store.read", "truncate"),
    ("store.write", "error"),
    ("store.write", "error_permanent"),
    ("store.lock", "error"),
)

REMOTE_FAULTS = (
    ("remote.send", "drop"),
    ("remote.send", "delay"),
    ("remote.recv", "drop"),
)


def fault_plans(pairs, max_faults=4):
    """Strategy: a :class:`FaultPlan` drawn from the given site table."""
    specs = st.tuples(
        st.sampled_from(pairs),
        st.integers(min_value=0, max_value=5),    # at
        st.integers(min_value=1, max_value=3),    # count
        st.integers(min_value=0, max_value=512),  # arg (offset bytes)
    ).map(lambda t: FaultSpec(
        site=t[0][0], kind=t[0][1], at=t[1], count=t[2],
        arg=(t[3] / 10_000.0 if t[0][1] == "delay" else float(t[3]))))
    return st.lists(specs, min_size=1, max_size=max_faults).map(
        lambda faults: FaultPlan(faults=tuple(faults)))


def build_requests():
    table = make_table(n=2000, d=50, k=16, distribution="zipf",
                       order="shuffled", page_size=1024, seed=11)
    return [EstimationRequest(table=table, columns=("a",),
                              algorithm=algorithm, fraction=fraction,
                              trials=2, page_size=512)
            for algorithm in ("null_suppression", "rle",
                              "global_dictionary")
            for fraction in (0.02, 0.05)]


def values(batch):
    return [None if result is None
            else tuple((float(e.estimate), e.sample_rows,
                        e.compressed_sample_bytes)
                       for e in result.estimates)
            for result in batch.results]


@pytest.fixture(scope="module")
def reference():
    return values(EstimationEngine(seed=MASTER_SEED).execute(
        build_requests()))


def assert_invariant(batch, reference_values):
    """The chaos contract for a deadline-bounded run.

    Every submitted unit accounted exactly once; every request whose
    units all ran is bit-identical to the fault-free reference; a
    request is ``None`` only when the deadline took one of its trials.
    """
    assert isinstance(batch, PartialBatchResult)
    requests = build_requests()
    submitted = sum(request.trials for request in requests)
    assert len(batch.outcomes) == submitted
    assert len({(o.index, o.trial) for o in batch.outcomes}) == submitted
    skipped = {o.index for o in batch.outcomes
               if o.status == "deadline_exceeded"}
    for position, got in enumerate(values(batch)):
        if got is None:
            assert skipped, (
                f"request {position} lost without any deadline skip")
        else:
            assert got == reference_values[position], (
                f"request {position}: wrong number under faults")


class TestChaosSerialStore:
    """Store faults on the serial path: absorbed, accounted, identical."""

    @CHAOS_SETTINGS
    @given(plan=fault_plans(IN_PROCESS_FAULTS))
    def test_any_store_fault_plan_absorbed(self, plan, reference,
                                           tmp_path_factory):
        root = tmp_path_factory.mktemp("chaos-store")
        store = SampleStore(root)
        EstimationEngine(seed=MASTER_SEED, store=store).execute(
            build_requests())  # warm both tiers
        store.injector = FaultInjector(plan)
        engine = EstimationEngine(seed=MASTER_SEED, store=store)
        batch = engine.execute(build_requests(), deadline=300.0)
        assert_invariant(batch, reference)
        assert not {o.status for o in batch.outcomes} & \
            {"deadline_exceeded"}
        # Whatever fired was accounted: store-side fault counter
        # matches the injector's own record.
        assert store.counters["faults_injected"] == \
            store.injector.fired_count()

    @CHAOS_SETTINGS
    @given(plan=fault_plans(IN_PROCESS_FAULTS), cold=st.booleans())
    def test_unbounded_chaos_run_stays_exact(self, plan, cold,
                                             reference,
                                             tmp_path_factory):
        """Without a deadline the API shape is unchanged: BatchResult,
        every value bit-identical — degradation shows only in stats."""
        root = tmp_path_factory.mktemp("chaos-store")
        store = SampleStore(root)
        if not cold:
            EstimationEngine(seed=MASTER_SEED, store=store).execute(
                build_requests())
        store.injector = FaultInjector(plan)
        batch = EstimationEngine(seed=MASTER_SEED, store=store).execute(
            build_requests())
        assert values(batch) == reference


class TestChaosProcessPool:
    """Worker death at hypothesis-chosen unit indices: parent absorbs."""

    @CHAOS_SETTINGS
    @given(at=st.integers(min_value=0, max_value=10),
           count=st.integers(min_value=1, max_value=2))
    def test_worker_crash_at_any_index(self, at, count, reference,
                                       monkeypatch):
        plan = FaultPlan(faults=(
            FaultSpec(site="pool.unit", kind="crash", at=at,
                      count=count),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        engine = EstimationEngine(
            seed=MASTER_SEED, executor=ProcessPoolPlanExecutor(2),
            injector=NULL_INJECTOR)
        batch = engine.execute(build_requests(), deadline=600.0)
        assert_invariant(batch, reference)
        assert batch.counts()["deadline_exceeded"] == 0
        # The crash either hit (worker died, units re-ran degraded) or
        # the index was past the worker's share — both are legal; what
        # is not legal is a crash that fired without being accounted.
        if batch.stats["pool_worker_deaths"]:
            assert batch.stats["pool_degraded_units"] >= 1
            assert batch.counts()["degraded"] >= 1


class TestChaosRemote:
    """Socket faults on the fake-remote path: survivors absorb."""

    @CHAOS_SETTINGS
    @given(plan=fault_plans(REMOTE_FAULTS, max_faults=3))
    def test_any_socket_fault_plan_absorbed(self, plan, reference):
        started = [start_worker_thread() for _ in range(2)]
        try:
            executor = RemotePlanExecutor(
                workers=[address for address, _ in started],
                chunk_units=2, max_local_workers=2,
                injector=FaultInjector(plan))
            engine = EstimationEngine(seed=MASTER_SEED,
                                      executor=executor)
            batch = engine.execute(build_requests(), deadline=600.0)
            assert_invariant(batch, reference)
            assert batch.counts()["deadline_exceeded"] == 0
            fired = executor.injector.fired_count()
            assert batch.stats["faults_injected"] == fired
            dropped = sum(1 for f in executor.injector.fired
                          if f.kind == "drop")
            if dropped:
                # Every drop buried a worker attempt; the units still
                # all resolved (survivor, retry, or local fallback).
                assert batch.stats["remote_worker_failures"] >= 1
        finally:
            for _, shutdown in started:
                shutdown()


class TestChaosDeadline:
    """Any deadline shrinks the result set, never corrupts it."""

    @CHAOS_SETTINGS
    @given(budget=st.sampled_from([0.0, 0.0005, 0.002, 0.01, 30.0]))
    def test_any_budget_accounts_exactly_once(self, budget, reference):
        engine = EstimationEngine(seed=MASTER_SEED)
        batch = engine.execute(build_requests(), deadline=budget)
        assert_invariant(batch, reference)

    def test_zero_budget_is_all_skips(self, reference):
        batch = EstimationEngine(seed=MASTER_SEED).execute(
            build_requests(), deadline=0.0)
        counts = batch.counts()
        assert counts["deadline_exceeded"] == len(batch.outcomes)
        assert counts["done"] == counts["degraded"] == 0


# ----------------------------------------------------------------------
# Store crash-consistency torture
# ----------------------------------------------------------------------
KEY = digest_parts("crash-torture-key")


def _sample():
    table = make_table(n=400, d=10, k=8, page_size=512, seed=3)
    return materialize_table_sample(table, WithReplacementSampler(),
                                    0.1, 7)


def _torn_store(root, offset):
    return SampleStore(root, injector=FaultInjector(FaultPlan(faults=(
        FaultSpec(site="store.write", kind="torn", at=0,
                  arg=float(offset)),))))


def _crashing_put(root, offset):
    """Subprocess target: die with ``os._exit(32)`` mid-``put``."""
    store = SampleStore(root, injector=FaultInjector(FaultPlan(faults=(
        FaultSpec(site="store.write", kind="crash", at=0,
                  arg=float(offset)),))))
    store.put_sample(KEY, _sample())


class TestCrashConsistency:
    def test_writer_killed_at_every_offset_reads_clean_or_miss(
            self, tmp_path):
        """The full sweep: a tear at byte 0 through byte N-1.

        The abandoned tmp file is exactly the on-disk state a killed
        writer leaves (unique ``mkstemp`` name, never ``os.replace``d),
        so the in-process ``torn`` kind covers every offset cheaply;
        the real-``os._exit`` spot checks below keep it honest.
        """
        sample = _sample()
        probe = SampleStore(tmp_path / "probe")
        probe.put_sample(KEY, sample)
        blob_len = probe._entry_path("samples", KEY).stat().st_size
        assert blob_len > 100
        root = tmp_path / "torture"
        for offset in range(blob_len):
            store = _torn_store(root, offset)
            with pytest.raises(InjectedFault):
                store.put_sample(KEY, sample)
            assert SampleStore(root).get_sample(KEY) is None, (
                f"torn write at offset {offset} left a readable entry")
        # No torn blob ever became a live entry, and nothing was ever
        # close enough to valid to quarantine.
        fresh = SampleStore(root)
        assert len(fresh) == 0
        assert fresh.counters["quarantined"] == 0

    def test_overwrite_kill_preserves_the_old_entry(self, tmp_path):
        """A tear during overwrite must leave the *previous* value."""
        sample = _sample()
        root = tmp_path / "store"
        SampleStore(root).put_sample(KEY, sample)
        blob_len = SampleStore(root)._entry_path(
            "samples", KEY).stat().st_size
        for offset in range(0, blob_len, 7):
            store = _torn_store(root, offset)
            with pytest.raises(InjectedFault):
                store.put_sample(KEY, sample)
            survivor = SampleStore(root).get_sample(KEY)
            assert survivor is not None, (
                f"overwrite tear at {offset} destroyed the old entry")
            assert survivor.rows == sample.rows

    @pytest.mark.parametrize("where", ["start", "middle", "end"])
    def test_real_process_kill_mid_put(self, tmp_path, where):
        """Spot checks with an actual ``os._exit(32)`` in a fork."""
        sample = _sample()
        probe = SampleStore(tmp_path / "probe")
        probe.put_sample(KEY, sample)
        blob_len = probe._entry_path("samples", KEY).stat().st_size
        offset = {"start": 0, "middle": blob_len // 2,
                  "end": blob_len - 1}[where]
        root = tmp_path / "crash"
        context = multiprocessing.get_context("fork")
        worker = context.Process(target=_crashing_put,
                                 args=(root, offset))
        worker.start()
        worker.join(timeout=60)
        assert worker.exitcode == 32  # died inside the injected fault
        assert SampleStore(root).get_sample(KEY) is None
        # The key is still writable afterwards: the abandoned tmp file
        # never poisons the slot.
        SampleStore(root).put_sample(KEY, sample)
        recovered = SampleStore(root).get_sample(KEY)
        assert recovered is not None
        assert recovered.rows == sample.rows
