"""Parity property suite: size kernels == scalar ``payload_size``.

Every registered algorithm (plus the non-default dictionary
configurations) is sized two ways over randomized pages drawn from the
repo's workload shapes — uniform/zipf/bimodal CHAR values, sorted and
shuffled integers, VARCHAR with empty/blank/NUL-bearing values, and
multi-column records — and the vectorized ``size_of`` must return the
exact integer the scalar ``compress`` path reports. A final test locks
the end-to-end contract: estimates computed with kernels force-disabled
(``REPRO_DISABLE_KERNELS``) are bit-identical to kernel-computed ones.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.kernels import (DISABLE_KERNELS_ENV,
                                       build_column_views, build_leaf_views)
from repro.compression.registry import get_algorithm, list_algorithms
from repro.core.samplecf import SampleCF
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema
from repro.workloads.generators import make_histogram, make_table

#: Registered algorithms plus configuration corners the registry's
#: defaults do not reach (derived pointers, NS-compressed entries).
ALGORITHMS = [get_algorithm(name) for name in list_algorithms()] + [
    DictionaryCompression(pointer_bytes=None),
    DictionaryCompression(entry_storage="null_suppressed"),
    DictionaryCompression(pointer_bytes=None,
                          entry_storage="null_suppressed"),
    GlobalDictionaryCompression(pointer_bytes=None),
    GlobalDictionaryCompression(entry_storage="null_suppressed"),
]


def assert_parity(schema, records, context=""):
    """Kernel size == scalar payload for every registered algorithm.

    No :class:`~repro.errors.KernelUnavailable` escape hatch: every
    configuration in ``ALGORITHMS`` (NS ``runs`` mode included) now has
    a size kernel, so a raise here is a regression, not a skip.
    """
    views = build_column_views(schema, records)
    assert views is not None, context
    for algorithm in ALGORITHMS:
        want = algorithm.compress(records, schema).payload_size
        got = algorithm.size_of(views, schema)
        assert got == want, \
            f"{algorithm.name} ({context}): kernel {got} != scalar {want}"


# ----------------------------------------------------------------------
# Workload-generator pages (the ISSUE's named shapes)
# ----------------------------------------------------------------------
K = 20


def char_records(values):
    schema = Schema([Column.of("a", f"char({K})")])
    return schema, [encode_record(schema, (value,)) for value in values]


@pytest.mark.parametrize("distribution", ["uniform", "zipf",
                                          "singleton_heavy"])
@pytest.mark.parametrize("order", ["sorted", "shuffled"])
def test_char_distribution_pages(distribution, order):
    histogram = make_histogram(400, 35, K, distribution=distribution,
                               seed=19)
    values = histogram.expand(order, seed=20)
    schema, records = char_records(list(values))
    assert_parity(schema, records, f"{distribution}/{order}")


def test_bimodal_length_strings():
    # short ids mixed with near-full-width values: both modes of the
    # Theorem 1 bimodal workload, in one page
    short = make_histogram(150, 12, K, min_len=1, max_len=3, seed=31)
    long_ = make_histogram(150, 12, K, min_len=K - 2, max_len=K, seed=32)
    values = list(short.expand("shuffled", seed=33)) \
        + list(long_.expand("shuffled", seed=34))
    schema, records = char_records(values)
    assert_parity(schema, records, "bimodal")


@pytest.mark.parametrize("sort", [False, True])
def test_integer_pages(sort):
    import random

    rng = random.Random(47)
    schema = Schema([Column.of("n", "integer"), Column.of("b", "bigint")])
    rows = [(rng.choice([0, 1, -1, 2 ** 31 - 1, -2 ** 31,
                         rng.randrange(-10 ** 6, 10 ** 6)]),
             rng.choice([0, -1, 2 ** 63 - 1, -2 ** 63,
                         rng.randrange(-10 ** 12, 10 ** 12)]))
            for _ in range(300)]
    if sort:
        rows.sort()
    records = [encode_record(schema, row) for row in rows]
    assert_parity(schema, records, f"integers sort={sort}")


def test_varchar_pages():
    import random

    rng = random.Random(53)
    pool = ["", " ", "x", "a\x00b", "trailing  ", "interior gap",
            "Ω".encode("latin-1", "replace").decode("latin-1"),
            "a" * 30, "ab" * 15]
    schema = Schema([Column.of("v", "varchar(30)")])
    rows = [(rng.choice(pool),) for _ in range(250)]
    records = [encode_record(schema, row) for row in rows]
    assert_parity(schema, records, "varchar")


def test_multicolumn_pages():
    import random

    rng = random.Random(61)
    schema = Schema([Column.of("status", "char(10)"),
                     Column.of("qty", "integer"),
                     Column.of("note", "varchar(16)"),
                     Column.of("uid", "bigint")])
    rows = [(rng.choice(["open", "closed", "pending", "", "x y"]),
             rng.randrange(-5000, 5000),
             rng.choice(["", "n/a", "see detail", "a\x00"]),
             rng.randrange(-2 ** 40, 2 ** 40))
            for _ in range(300)]
    records = [encode_record(schema, row) for row in rows]
    assert_parity(schema, records, "multicolumn")


# ----------------------------------------------------------------------
# Hypothesis-randomized pages
# ----------------------------------------------------------------------
char_values = st.text(
    alphabet=string.ascii_letters + string.digits + " 0\x1b\x00",
    min_size=0, max_size=K,
).map(lambda s: s.rstrip(" "))


@settings(max_examples=50, deadline=None)
@given(values=st.lists(char_values, min_size=1, max_size=60))
def test_random_char_pages(values):
    schema, records = char_records(values)
    assert_parity(schema, records, "hypothesis char")


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(
    st.tuples(st.integers(-2 ** 31, 2 ** 31 - 1),
              st.integers(-2 ** 63, 2 ** 63 - 1)),
    min_size=1, max_size=60))
def test_random_int_pages(rows):
    schema = Schema([Column.of("n", "integer"), Column.of("b", "bigint")])
    records = [encode_record(schema, row) for row in rows]
    assert_parity(schema, records, "hypothesis ints")


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(
    st.tuples(char_values,
              st.text(alphabet=string.printable, min_size=0, max_size=12)),
    min_size=1, max_size=50))
def test_random_mixed_pages(rows):
    schema = Schema([Column.of("a", f"char({K})"),
                     Column.of("v", "varchar(12)")])
    records = [encode_record(schema, row) for row in rows]
    assert_parity(schema, records, "hypothesis mixed")


@settings(max_examples=25, deadline=None)
@given(values=st.lists(char_values, min_size=1, max_size=80),
       cuts=st.lists(st.integers(1, 12), min_size=1, max_size=8))
def test_random_leaf_slicing(values, cuts):
    """Per-leaf sliced views agree with per-leaf scalar compression."""
    schema, records = char_records(values)
    leaves, start, i = [], 0, 0
    while start < len(records):
        step = cuts[i % len(cuts)]
        leaves.append(records[start:start + step])
        start += step
        i += 1
    leaf_views = build_leaf_views(schema, leaves)
    assert leaf_views is not None
    for algorithm in ALGORITHMS:
        got = sum(algorithm.size_of(views, schema)
                  for views in leaf_views)
        want = sum(algorithm.compress(leaf, schema).payload_size
                   for leaf in leaves)
        assert got == want, algorithm.name


# ----------------------------------------------------------------------
# NS runs mode: the interior-run escape encoding's dedicated corners
# ----------------------------------------------------------------------
def test_ns_runs_long_run_pages():
    """Runs past the 255-byte token cap, escapes, and interior pads."""
    k = 300
    schema = Schema([Column.of("a", f"char({k})")])
    values = [
        "",
        "A" + "0" * 298 + "B",        # interior zero run > 255
        " " * 260 + "Z",              # leading pad run > 255 (kept by Z)
        "0" * k,                      # the whole value is one run
        "\x1b" * 10 + "0" * 4,        # escape literals next to a run
        "ab 0 c  00   d",             # sub-minimum runs stay literal
        "x" + " " * 255 + "y",        # run of exactly the token cap
        "x" + " " * 256 + "y",        # cap + 1: chunk plus 1 literal
        "x" + " " * 259 + "y",        # cap + 4: chunk plus a short token
        ("0" * 7 + " " * 7 + "\x1b") * 19,  # alternating runs + escapes
    ]
    records = [encode_record(schema, (value,)) for value in values]
    assert_parity(schema, records, "ns-runs long")


@settings(max_examples=50, deadline=None)
@given(values=st.lists(
    st.text(alphabet=" 0\x1bAB", min_size=0, max_size=40
            ).map(lambda s: s.rstrip(" ")),
    min_size=1, max_size=40))
def test_ns_runs_random_runnable_pages(values):
    """Pages biased toward pads/zeros/escapes, the runs-mode hot path."""
    schema = Schema([Column.of("a", "char(40)")])
    records = [encode_record(schema, (value,)) for value in values]
    assert_parity(schema, records, "ns-runs hypothesis")


# ----------------------------------------------------------------------
# End-to-end: the numpy-fallback path gives identical estimates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["null_suppression",
                                       "null_suppression_runs",
                                       "dictionary",
                                       "global_dictionary", "rle",
                                       "prefix", "page", "delta"])
def test_disabled_kernels_identical_estimates(algorithm, monkeypatch):
    from repro.engine.engine import EstimationEngine

    table = make_table(600, 30, 14, seed=71)

    def estimate():
        estimator = SampleCF(algorithm, engine=EstimationEngine(seed=88))
        return estimator.estimate_table(table, 0.25, ["a"], seed=13)

    fast = estimate()
    monkeypatch.setenv(DISABLE_KERNELS_ENV, "1")
    slow = estimate()
    assert fast == slow
