"""Unit tests for repro.core.samplecf — the paper's estimator."""

import numpy as np
import pytest

from repro.errors import EstimationError, SamplingError
from repro.sampling.block import BlockSampler
from repro.sampling.row_samplers import WithoutReplacementSampler
from repro.storage.index import IndexKind
from repro.storage.schema import single_char_schema
from repro.storage.table import Table
from repro.storage.types import CharType
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.core.samplecf import (SampleCF, SampleCFEstimate, sample_cf,
                                 true_cf_histogram, true_cf_table)

PAGE = 512


@pytest.fixture
def table(medium_table) -> Table:
    return medium_table


@pytest.fixture
def histogram() -> ColumnHistogram:
    values = [f"v{i:03d}" + "w" * (i % 11) for i in range(80)]
    counts = np.arange(1, 81) * 7
    return ColumnHistogram(CharType(20), values, counts)


class TestEstimateTable:
    def test_returns_sensible_estimate(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        result = estimator.estimate_table(table, 0.05, ["a"], seed=1)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert isinstance(result, SampleCFEstimate)
        assert result.path == "storage"
        assert result.sample_rows == round(0.05 * table.num_rows)
        assert abs(result.estimate - truth) < 0.1

    def test_algorithm_by_name(self, table):
        estimator = SampleCF("null_suppression", page_size=PAGE)
        result = estimator.estimate_table(table, 0.05, ["a"], seed=1)
        assert result.algorithm == "null_suppression"

    def test_reproducible_with_seed(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        first = estimator.estimate_table(table, 0.05, ["a"], seed=42)
        second = estimator.estimate_table(table, 0.05, ["a"], seed=42)
        assert first.estimate == second.estimate

    def test_different_seeds_differ(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        estimates = {estimator.estimate_table(table, 0.02, ["a"],
                                              seed=s).estimate
                     for s in range(5)}
        assert len(estimates) > 1

    def test_empty_table_rejected(self):
        table = Table("empty", single_char_schema(8), page_size=PAGE)
        estimator = SampleCF(NullSuppression())
        with pytest.raises(EstimationError):
            estimator.estimate_table(table, 0.1, ["a"])

    def test_full_fraction_without_replacement_is_exact(self, table):
        estimator = SampleCF(NullSuppression(),
                             sampler=WithoutReplacementSampler(),
                             page_size=PAGE)
        result = estimator.estimate_table(table, 1.0, ["a"], seed=3)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert result.estimate == pytest.approx(truth)

    def test_nonclustered_kind(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        result = estimator.estimate_table(
            table, 0.05, ["a"], kind=IndexKind.NONCLUSTERED, seed=1)
        assert result.estimate > 0
        # Non-clustered leaves carry key + 8-byte RID per entry.
        assert result.uncompressed_sample_bytes == \
            result.sample_rows * (20 + 8)

    def test_block_sampler_path(self, table):
        estimator = SampleCF(NullSuppression(), sampler=BlockSampler(),
                             page_size=PAGE)
        result = estimator.estimate_table(table, 0.05, ["a"], seed=1)
        assert result.path == "block"
        assert result.details["pages_sampled"] >= 1
        assert result.sample_rows >= round(0.05 * table.num_rows)

    def test_sample_distinct_tracked(self, table):
        estimator = SampleCF(GlobalDictionaryCompression(), page_size=PAGE)
        result = estimator.estimate_table(table, 0.10, ["a"], seed=1)
        assert 1 <= result.sample_distinct <= 100


class TestEstimateIndex:
    def test_matches_table_path_distribution(self, table):
        index = table.create_index("ix", ["a"], kind=IndexKind.CLUSTERED)
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        result = estimator.estimate_index(index, 0.1, seed=5)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert result.path == "index"
        assert abs(result.estimate - truth) < 0.1

    def test_block_sampling_over_leaves(self, table):
        index = table.create_index("ix2", ["a"], kind=IndexKind.CLUSTERED)
        estimator = SampleCF(NullSuppression(), sampler=BlockSampler(),
                             page_size=PAGE)
        result = estimator.estimate_index(index, 0.1, seed=5)
        assert result.path == "index_block"
        assert result.details["pages_sampled"] >= 1

    def test_empty_index_rejected(self):
        from repro.storage.index import Index

        index = Index("ix", single_char_schema(8), ["a"], page_size=PAGE)
        with pytest.raises(EstimationError):
            SampleCF(NullSuppression()).estimate_index(index, 0.1)


class TestEstimateHistogram:
    def test_ns_estimate_near_truth(self, histogram):
        estimator = SampleCF(NullSuppression())
        result = estimator.estimate_histogram(histogram, 0.2, seed=1)
        assert result.path == "histogram"
        assert abs(result.estimate - ns_cf(histogram)) < 0.05

    def test_sample_rows_respected(self, histogram):
        estimator = SampleCF(NullSuppression())
        result = estimator.estimate_histogram(histogram, 0.1, seed=1)
        assert result.sample_rows == round(0.1 * histogram.n)

    def test_block_sampler_rejected(self, histogram):
        estimator = SampleCF(NullSuppression(), sampler=BlockSampler())
        with pytest.raises(SamplingError):
            estimator.estimate_histogram(histogram, 0.1)

    def test_physical_accounting_rejected(self, histogram):
        estimator = SampleCF(NullSuppression(), accounting="physical")
        with pytest.raises(EstimationError):
            estimator.estimate_histogram(histogram, 0.1)

    def test_dictionary_estimate_formula(self, histogram):
        estimator = SampleCF(GlobalDictionaryCompression())
        result = estimator.estimate_histogram(histogram, 0.1, seed=4)
        expected = result.sample_distinct / result.sample_rows + 2 / 20
        assert result.estimate == pytest.approx(expected)

    def test_paged_dictionary_uses_page_size(self, histogram):
        small = SampleCF(DictionaryCompression(), page_size=256)
        large = SampleCF(DictionaryCompression(), page_size=8192)
        est_small = small.estimate_histogram(histogram, 0.5, seed=2)
        est_large = large.estimate_histogram(histogram, 0.5, seed=2)
        # Smaller pages -> more pages -> more dictionary copies.
        assert est_small.estimate >= est_large.estimate


class TestConvenienceAndTruth:
    def test_sample_cf_function(self, table):
        value = sample_cf(table, 0.05, ["a"], "null_suppression", seed=8)
        truth = true_cf_table(table, ["a"], "null_suppression")
        assert abs(value - truth) < 0.1

    def test_true_cf_table_accepts_names(self, table):
        assert true_cf_table(table, ["a"], "null_suppression") == \
            true_cf_table(table, ["a"], NullSuppression())

    def test_true_cf_histogram(self, histogram):
        truth = true_cf_histogram(histogram, "null_suppression")
        assert truth == pytest.approx(ns_cf(histogram))

    def test_zero_estimate_allowed(self):
        # A perfectly compressible sample (compressed bytes == 0) is a
        # legitimate CF-0 outcome, not an error.
        estimate = SampleCFEstimate(
            estimate=0.0, sample_rows=1, sampling_fraction=0.1,
            algorithm="x", accounting="payload", path="test",
            uncompressed_sample_bytes=1, compressed_sample_bytes=0)
        assert estimate.estimate == 0.0

    def test_negative_estimate_rejected(self):
        with pytest.raises(EstimationError):
            SampleCFEstimate(
                estimate=-0.1, sample_rows=1, sampling_fraction=0.1,
                algorithm="x", accounting="payload", path="test",
                uncompressed_sample_bytes=1, compressed_sample_bytes=0)
