"""``repro.obs``: spans, metrics, reports, and the tracing contract.

The subsystem's three promises, each locked here:

* **structure** — spans nest by thread, cross process-pool and remote
  boundaries via shipped :class:`~repro.obs.SpanContext` objects, and
  re-parent correctly when adopted back;
* **neutrality** — estimates are bit-identical with tracing on or off
  (the executor matrix lives in the determinism property suite; the
  CLI acceptance scenario lives here);
* **accounting** — ``trace summarize`` explains the run: per-phase
  self-times cover >= 90% of wall-clock and every executed unit
  appears exactly once, even when a worker dies mid-shard.
"""

from __future__ import annotations

import io
import json
import pickle

import pytest

from repro.cli import main
from repro.engine import (EngineStats, EstimationEngine,
                          EstimationRequest, ProcessPoolPlanExecutor,
                          RemotePlanExecutor, SerialExecutor)
from repro.engine.remote import start_worker_thread
from repro.obs import (NULL_TRACER, MetricsRegistry, SpanContext,
                       Tracer, absorb_engine_stats, one_line,
                       read_trace, render, summarize)
from repro.workloads.generators import make_histogram


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def spans_of(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("type") == "span"]


class TestTracerSpans:
    def test_nesting_parents_by_thread(self):
        stream = io.StringIO()
        tracer = Tracer.to_stream(stream)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id is None
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        assert records[0]["type"] == "meta"
        by_name = {r["name"]: r for r in spans_of(records)}
        # Children finish (and record) before their parents.
        assert [r["name"] for r in spans_of(records)] == [
            "inner", "outer", "sibling"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["dur"] <= by_name["outer"]["dur"]

    def test_annotate_and_events(self):
        stream = io.StringIO()
        tracer = Tracer.to_stream(stream)
        with tracer.span("work", kind="demo") as span:
            span.annotate(rows=42)
            tracer.event("milestone", step=1)
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        event = next(r for r in records if r["type"] == "event")
        span_record = next(r for r in records if r["type"] == "span")
        assert span_record["attrs"] == {"kind": "demo", "rows": 42}
        assert event["parent"] == span_record["id"]
        assert event["attrs"] == {"step": 1}

    def test_out_of_order_exit_does_not_corrupt_peers(self):
        stream = io.StringIO()
        tracer = Tracer.to_stream(stream)
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__exit__(None, None, None)  # leaked child, parent exits
        with tracer.span("next") as after:
            assert after.parent_id is None
        inner.__exit__(None, None, None)

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(path)
        with tracer.span("a"):
            pass
        tracer.close()
        records = read_trace(path)
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == 1
        assert meta["wall_start"] > 0
        assert records[-1]["type"] == "metrics"
        assert any(r["name"] == "a" for r in spans_of(records))

    def test_close_emits_span_histograms(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(path)
        with tracer.span("phase"):
            pass
        tracer.close()
        final = read_trace(path)[-1]
        assert final["type"] == "metrics"
        assert "span.phase.seconds" in final["histograms"]
        assert final["histograms"]["span.phase.seconds"]["count"] == 1

    def test_null_tracer_is_allocation_free(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", big=object())
        assert NULL_TRACER.span("other") is span  # one shared object
        with span:
            span.annotate(ignored=True)
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.current_context() is None


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("reads").inc()
        registry.counter("reads").inc(4)
        registry.gauge("depth").set(7.5)
        registry.histogram("lat").observe(0.002)
        registry.histogram("lat").observe(0.004)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["reads"] == 5
        assert snapshot["gauges"]["depth"] == 7.5
        assert snapshot["histograms"]["lat"]["count"] == 2
        assert snapshot["histograms"]["lat"]["sum"] == \
            pytest.approx(0.006)

    def test_absorb_engine_stats_is_a_projection(self):
        stats = EngineStats()
        stats.add("trials", 3)
        stats.set_gauge("cost_model.rate", 0.5)
        registry = MetricsRegistry()
        absorb_engine_stats(registry, stats)
        absorb_engine_stats(registry, stats)  # snapshot, not a sum
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.trials"] == 3
        assert snapshot["gauges"]["engine.gauges.cost_model.rate"] == 0.5


class TestCollectorReparenting:
    def test_span_context_survives_pickle(self):
        context = SpanContext(trace_id="t1", span_id="main.3")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_collector_roots_under_shipped_context(self):
        context = SpanContext(trace_id="t9", span_id="main.7")
        collector = Tracer.collector(context)
        assert collector.trace_id == "t9"
        with collector.span("worker.op"):
            pass
        records = collector.drain()
        assert records[0]["parent"] == "main.7"
        assert collector.drain() == []  # drain empties the buffer

    def test_two_collectors_never_collide(self):
        context = SpanContext(trace_id="t9", span_id="main.7")
        first, second = (Tracer.collector(context) for _ in range(2))
        with first.span("op"):
            pass
        with second.span("op"):
            pass
        ids = {first.drain()[0]["id"], second.drain()[0]["id"]}
        assert len(ids) == 2

    def test_adopt_rebases_to_local_clock(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(path)
        # A foreign clock far in this tracer's future.
        foreign = [
            {"type": "span", "id": "w.1", "parent": "main.1",
             "name": "op", "proc": "w", "t": 1e6, "dur": 0.25},
            {"type": "span", "id": "w.2", "parent": "w.1",
             "name": "sub", "proc": "w", "t": 1e6 + 0.1, "dur": 0.05},
        ]
        tracer.adopt(foreign, align_end=2.0)
        tracer.close()
        adopted = {r["id"]: r for r in spans_of(read_trace(path))}
        assert all(r["adopted"] for r in adopted.values())
        # The batch's latest end lands exactly at align_end; relative
        # offsets within the batch are preserved.
        assert adopted["w.1"]["t"] + 0.25 == pytest.approx(2.0)
        assert adopted["w.2"]["t"] - adopted["w.1"]["t"] == \
            pytest.approx(0.1)


def _batch_requests() -> list[EstimationRequest]:
    histogram = make_histogram(8000, 60, 16, seed=3)
    return [EstimationRequest(histogram=histogram,
                              algorithm=algorithm, fraction=0.05,
                              trials=2, label=f"w:{algorithm}")
            for algorithm in ("null_suppression", "rle")]


def _traced_batch(tmp_path, executor):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer.to_path(path)
    engine = EstimationEngine(seed=5, executor=executor, tracer=tracer)
    batch = engine.execute(_batch_requests())
    tracer.close()
    return batch, read_trace(path)


class TestSummarize:
    def test_serial_run_accounts_for_wall_clock(self, tmp_path):
        _, records = _traced_batch(tmp_path, SerialExecutor())
        summary = summarize(records)
        assert summary["units"]["exactly_once"]
        assert summary["units"]["executed"] == 4
        assert summary["units"]["expected"] == 4
        assert summary["coverage"] >= 0.9
        assert {"engine.execute", "unit.run",
                "sample.materialize"} <= set(summary["phases"])
        # Self-times partition each root span: their sum cannot exceed
        # the wall envelope.
        assert summary["self_seconds"] <= summary["wall_seconds"] * 1.001

    def test_units_keyed_per_batch_across_a_multi_batch_trace(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(path)
        engine = EstimationEngine(seed=5, tracer=tracer)
        engine.execute(_batch_requests())
        engine.execute(_batch_requests())  # unit indexes restart at 0
        tracer.close()
        summary = summarize(read_trace(path))
        assert summary["units"]["executed"] == 8
        assert summary["units"]["expected"] == 8
        assert summary["units"]["exactly_once"]

    def test_process_pool_spans_adopted_and_accounted(self, tmp_path):
        _, records = _traced_batch(tmp_path,
                                   ProcessPoolPlanExecutor(2))
        assert any(r.get("adopted") for r in records)
        summary = summarize(records)
        assert summary["units"]["exactly_once"]
        assert summary["units"]["executed"] == 4
        assert summary["coverage"] >= 0.9  # pool.run covers the wait

    def test_render_and_one_line(self, tmp_path):
        _, records = _traced_batch(tmp_path, SerialExecutor())
        summary = summarize(records)
        text = render(summary)
        assert "Per-phase breakdown" in text
        assert "exactly once" in text
        assert "Slowest units" in text
        line = one_line(summary)
        assert line.startswith("trace: wall ")
        assert "exactly-once" in line


class TestRemoteTracing:
    def test_chunk_spans_carry_worker_attribution(self, tmp_path):
        started = [start_worker_thread() for _ in range(2)]
        try:
            executor = RemotePlanExecutor(
                workers=[address for address, _ in started],
                chunk_units=1)
            _, records = _traced_batch(tmp_path, executor)
        finally:
            for _, shutdown in started:
                shutdown()
        summary = summarize(records)
        assert summary["units"]["exactly_once"]
        assert summary["workers"]  # per-worker busy table populated
        assert sum(entry["units"]
                   for entry in summary["workers"].values()) == 4

    def test_worker_killed_mid_shard_every_unit_exactly_once(
            self, tmp_path):
        """The trace stays honest through retries: a dying worker's
        units are re-run elsewhere, yet each appears exactly once —
        failed chunks return no result frame, so no span ever came
        home for the lost attempts."""
        dying, kill_dying = start_worker_thread(fail_after_units=1)
        survivor, stop_survivor = start_worker_thread()
        try:
            executor = RemotePlanExecutor(workers=[dying, survivor],
                                          chunk_units=1)
            batch, records = _traced_batch(tmp_path, executor)
        finally:
            kill_dying()
            stop_survivor()
        assert batch.stats["remote_worker_failures"] >= 1
        summary = summarize(records)
        assert summary["units"]["exactly_once"], summary["units"]
        assert summary["units"]["executed"] == 4
        assert summary["events"].get("worker.failed", 0) >= 1
        # And the numbers still match an untraced serial run.
        serial = EstimationEngine(seed=5).execute(_batch_requests())
        assert [r.values.tolist() for r in batch.results] == \
            [r.values.tolist() for r in serial.results]


ADVISE_SPEC = {
    "tables": {
        "orders": {"n": 1200,
                   "columns": [["status", 10, 5],
                               ["customer", 24, 150]],
                   "page_size": 1024, "seed": 5},
        "parts": {"n": 700, "d": 60, "k": 20, "seed": 6,
                  "page_size": 1024},
    },
    "queries": [
        {"name": "q_status", "table": "orders", "columns": ["status"],
         "selectivity": 0.2, "weight": 10},
        {"name": "q_customer", "table": "orders",
         "columns": ["customer"], "selectivity": 0.05, "weight": 5},
        {"name": "q_a", "table": "parts", "columns": ["a"],
         "selectivity": 0.1, "weight": 2},
    ],
    "storage_bound_bytes": 60_000,
    "algorithms": ["null_suppression", "dictionary"],
    "fraction": 0.1,
    "trials": 2,
    "seed": 11,
}


class TestCLIAcceptance:
    """The issue's acceptance scenario, end to end through the CLI."""

    @pytest.fixture
    def advise_path(self, tmp_path):
        path = tmp_path / "design.json"
        path.write_text(json.dumps(ADVISE_SPEC), encoding="utf-8")
        return str(path)

    def test_traced_advise_bit_identical_and_accounted(
            self, capsys, tmp_path, advise_path):
        trace_path = str(tmp_path / "t.jsonl")
        code, traced_out, err = run_cli(
            capsys, "advise", advise_path, "--what-if",
            "--executor", "process", "--trace", trace_path)
        assert code == 0
        assert err.startswith("trace: wall ")
        code, untraced_out, err = run_cli(
            capsys, "advise", advise_path, "--what-if",
            "--executor", "process")
        assert code == 0
        assert err == ""
        # Bit-identical: the JSON payloads match byte for byte.
        assert traced_out == untraced_out

        summary = summarize(read_trace(trace_path))
        assert summary["coverage"] >= 0.9
        assert summary["units"]["exactly_once"], summary["units"]
        assert summary["units"]["executed"] == \
            summary["units"]["expected"]

    def test_trace_summarize_command(self, capsys, tmp_path,
                                     advise_path):
        trace_path = str(tmp_path / "t.jsonl")
        code, _, _ = run_cli(capsys, "advise", advise_path,
                             "--what-if", "--trace", trace_path)
        assert code == 0
        code, out, _ = run_cli(capsys, "trace", "summarize",
                               trace_path, "--top", "3")
        assert code == 0
        assert "Per-phase breakdown" in out
        assert "whatif.advise" in out
        code, out, _ = run_cli(capsys, "trace", "summarize",
                               trace_path, "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["units"]["exactly_once"]
        assert len(payload["slowest_units"]) <= 10

    def test_trace_summarize_rejects_missing_file(self, capsys,
                                                  tmp_path):
        code, _, err = run_cli(capsys, "trace", "summarize",
                               str(tmp_path / "absent.jsonl"))
        assert code == 1
        assert "cannot read trace" in err

    def test_traced_estimate_batch_stderr_one_liner(self, capsys,
                                                    tmp_path):
        spec = {"seed": 7,
                "workloads": {"w": {"n": 4000, "d": 40, "k": 12}},
                "requests": [{"workload": "w", "fraction": 0.05,
                              "trials": 2}]}
        spec_path = tmp_path / "batch.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        trace_path = str(tmp_path / "t.jsonl")
        code, out, err = run_cli(capsys, "estimate-batch",
                                 str(spec_path), "--trace", trace_path)
        assert code == 0
        assert "exactly-once" in err
        payload = json.loads(out)
        # The payload shape is unchanged by tracing.
        assert set(payload) == {"seed", "executor", "store_dir",
                                "plan", "results", "stats"}
