"""Unit tests for the physical-design advisor (cost, candidates,
selection, capacity)."""

import pytest

from repro.errors import AdvisorError
from repro.workloads.generators import make_multicolumn_table, make_table
from repro.advisor.candidates import (CandidateIndex, enumerate_candidates,
                                      enumerate_candidates_batch,
                                      uncompressed_index_bytes)
from repro.advisor.capacity import plan_capacity
from repro.advisor.cost import (CostModel, Query, TableStats, covers,
                                stats_for_tables, workload_cost)
from repro.advisor.selection import (advise_from_data, design_summary,
                                     select_indexes)

PAGE = 1024


@pytest.fixture(scope="module")
def tables():
    orders = make_multicolumn_table(
        "orders", 2000, [("status", 10, 5), ("customer", 24, 200)],
        page_size=PAGE, seed=5)
    parts = make_multicolumn_table(
        "parts", 1000, [("sku", 24, 100)], page_size=PAGE, seed=6)
    return {"orders": orders, "parts": parts}


@pytest.fixture(scope="module")
def stats(tables):
    return {name: TableStats(name, t.num_rows, t.heap.num_pages)
            for name, t in tables.items()}


@pytest.fixture(scope="module")
def queries():
    return [
        Query("q_status", "orders", ("status",), selectivity=0.2,
              weight=10),
        Query("q_customer", "orders", ("customer",), selectivity=0.05,
              weight=5),
        Query("q_sku", "parts", ("sku",), selectivity=0.1, weight=2),
    ]


class TestCostModel:
    def test_query_validation(self):
        with pytest.raises(AdvisorError):
            Query("q", "t", ())
        with pytest.raises(AdvisorError):
            Query("q", "t", ("a",), selectivity=0.0)
        with pytest.raises(AdvisorError):
            Query("q", "t", ("a",), weight=-1)

    def test_table_stats_validation(self):
        with pytest.raises(AdvisorError):
            TableStats("t", 0, 1)

    def test_covers(self):
        query = Query("q", "t", ("a", "b"))
        assert covers(("a", "b", "c"), query)
        assert covers(("b", "a"), query)
        assert not covers(("a",), query)

    def test_pages_for_bytes(self):
        model = CostModel(page_size=1000)
        assert model.pages_for_bytes(1) == 1
        assert model.pages_for_bytes(1000) == 1
        assert model.pages_for_bytes(1001) == 2

    def test_compressed_pays_cpu(self):
        model = CostModel(decompression_cpu_factor=0.5)
        query = Query("q", "t", ("a",), selectivity=1.0)
        plain = model.index_access_cost(query, 100, compressed=False)
        packed = model.index_access_cost(query, 100, compressed=True)
        assert packed == pytest.approx(plain * 1.5)

    def test_workload_cost_falls_back_to_scan(self, queries, stats):
        result = workload_cost(queries, stats, [], CostModel(PAGE))
        expected = sum(q.weight * stats[q.table].heap_pages
                       for q in queries)
        assert result.total == pytest.approx(expected)

    def test_workload_cost_uses_best_index(self, queries, stats):
        candidate = CandidateIndex(
            table="orders", key_columns=("status",), compressed=False,
            algorithm=None, size_bytes=4.0 * PAGE, size_source="schema")
        with_index = workload_cost(queries, stats, [candidate],
                                   CostModel(PAGE))
        without = workload_cost(queries, stats, [], CostModel(PAGE))
        assert with_index.total < without.total
        assert with_index.per_query["q_status"] < \
            without.per_query["q_status"]

    def test_unknown_table_rejected(self, stats):
        bad = Query("q", "ghost", ("a",))
        with pytest.raises(AdvisorError):
            workload_cost([bad], stats, [], CostModel(PAGE))


class TestCandidates:
    def test_uncompressed_bytes_formula(self, tables):
        table = tables["orders"]
        assert uncompressed_index_bytes(table, ["status"]) == \
            2000 * (10 + 8)
        assert uncompressed_index_bytes(table, ["status", "customer"]) \
            == 2000 * (10 + 24 + 8)

    def test_enumeration_has_both_variants(self, tables, queries):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=1)
        assert len(candidates) == 2 * 3  # 3 key sets x 2 variants
        compressed = [c for c in candidates if c.compressed]
        assert all(c.estimated_cf is not None for c in compressed)
        assert all(0 < c.estimated_cf <= 1.5 for c in compressed)

    def test_compressed_smaller_than_plain(self, tables, queries):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=1)
        by_key = {}
        for candidate in candidates:
            by_key.setdefault(
                (candidate.table, candidate.key_columns), []).append(
                    candidate)
        for pair in by_key.values():
            plain = next(c for c in pair if not c.compressed)
            packed = next(c for c in pair if c.compressed)
            assert packed.size_bytes < plain.size_bytes

    def test_exact_source(self, tables, queries):
        candidates = enumerate_candidates(tables, queries,
                                          size_source="exact")
        compressed = [c for c in candidates if c.compressed]
        assert all(c.size_source == "exact" for c in compressed)

    def test_bad_source_rejected(self, tables, queries):
        with pytest.raises(AdvisorError):
            enumerate_candidates(tables, queries, size_source="vibes")

    def test_unknown_table_rejected(self, tables):
        ghost = Query("q", "ghost", ("a",))
        with pytest.raises(AdvisorError):
            enumerate_candidates(tables, [ghost])

    def test_candidate_name(self):
        candidate = CandidateIndex(
            table="t", key_columns=("a", "b"), compressed=True,
            algorithm="page", size_bytes=10.0, size_source="samplecf",
            estimated_cf=0.5)
        assert candidate.name == "ix_t_a_b__page"


class TestSelection:
    def test_respects_storage_bound(self, tables, queries, stats):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=2)
        bound = 50_000
        result = select_indexes(candidates, queries, stats, bound,
                                CostModel(PAGE))
        assert result.bytes_used <= bound
        assert sum(c.size_bytes for c in result.chosen) == \
            pytest.approx(result.bytes_used)

    def test_improves_cost(self, tables, queries, stats):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=2)
        result = select_indexes(candidates, queries, stats, 10**6,
                                CostModel(PAGE))
        assert result.cost_after <= result.cost_before
        assert result.improvement >= 0

    def test_tight_bound_prefers_compressed(self, tables, queries, stats):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=2)
        plain_status = next(c for c in candidates
                            if c.key_columns == ("status",)
                            and not c.compressed)
        # A bound below the uncompressed size forces the compressed pick.
        bound = plain_status.size_bytes * 0.9
        result = select_indexes(candidates, queries, stats, bound,
                                CostModel(PAGE))
        assert any(c.compressed for c in result.chosen)

    def test_zero_bound_rejected(self, tables, queries, stats):
        with pytest.raises(AdvisorError):
            select_indexes([], queries, stats, 0)

    def test_summary_readable(self, tables, queries, stats):
        candidates = enumerate_candidates(tables, queries,
                                          fraction=0.05, seed=2)
        result = select_indexes(candidates, queries, stats, 10**6,
                                CostModel(PAGE))
        text = design_summary(result)
        assert "storage bound" in text
        assert "workload cost" in text


class TestSelectionDeterminism:
    """Pins for the greedy loop's edge behaviour.

    The lazy what-if advisor replicates ``select_indexes``'s scan
    exactly, so its parity guarantees are only as strong as these
    pins: ties break toward the earlier candidate in input order, and
    a round with no strictly-positive improvement terminates the loop.
    """

    @staticmethod
    def _twin_setup():
        stats = {"t1": TableStats("t1", 1000, 100),
                 "t2": TableStats("t2", 1000, 100)}
        queries = [Query("q1", "t1", ("a",), selectivity=1.0, weight=1),
                   Query("q2", "t2", ("a",), selectivity=1.0, weight=1)]
        size = 4.0 * PAGE
        first = CandidateIndex(table="t1", key_columns=("a",),
                               compressed=False, algorithm=None,
                               size_bytes=size, size_source="schema")
        second = CandidateIndex(table="t2", key_columns=("a",),
                                compressed=False, algorithm=None,
                                size_bytes=size, size_source="schema")
        return stats, queries, first, second

    def test_capacity_constrained_tie_prefers_input_order(self):
        """Two equal-density candidates, room for one: first one wins."""
        stats, queries, first, second = self._twin_setup()
        bound = first.size_bytes  # exactly one fits
        result = select_indexes([first, second], queries, stats, bound,
                                CostModel(PAGE))
        assert result.chosen == (first,)
        flipped = select_indexes([second, first], queries, stats, bound,
                                 CostModel(PAGE))
        assert flipped.chosen == (second,)

    def test_tie_with_room_for_both_keeps_input_order(self):
        stats, queries, first, second = self._twin_setup()
        bound = 2 * first.size_bytes
        result = select_indexes([first, second], queries, stats, bound,
                                CostModel(PAGE))
        assert result.chosen == (first, second)

    def test_zero_improvement_leaves_design_empty(self):
        """Candidates that cover no query terminate the loop at once."""
        stats, queries, _, _ = self._twin_setup()
        useless = CandidateIndex(table="t1", key_columns=("b",),
                                 compressed=False, algorithm=None,
                                 size_bytes=PAGE, size_source="schema")
        result = select_indexes([useless], queries, stats, 10**6,
                                CostModel(PAGE))
        assert result.chosen == ()
        assert result.steps == ()
        assert result.cost_after == result.cost_before
        assert result.improvement == 0

    def test_index_worse_than_scan_never_chosen(self):
        """An index costing more pages than the heap is zero gain."""
        stats = {"t1": TableStats("t1", 1000, 10)}
        queries = [Query("q1", "t1", ("a",), selectivity=1.0, weight=1)]
        fat = CandidateIndex(table="t1", key_columns=("a",),
                             compressed=False, algorithm=None,
                             size_bytes=100.0 * PAGE,
                             size_source="schema")
        result = select_indexes([fat], queries, stats, 10**9,
                                CostModel(PAGE))
        assert result.chosen == ()
        assert result.cost_after == result.cost_before

    def test_candidate_gain_matches_selection_arithmetic(self):
        from repro.advisor.selection import candidate_gain
        from repro.advisor.cost import workload_cost

        stats, queries, first, _ = self._twin_setup()
        model = CostModel(PAGE)
        current = workload_cost(queries, stats, [], model).total
        reduction, total = candidate_gain(first, queries, stats, [],
                                          model, current)
        assert total == workload_cost(queries, stats, [first],
                                      model).total
        assert reduction == current - total

    def test_candidate_gain_monotone_in_size(self):
        """The monotonicity the what-if density bounds rely on."""
        from repro.advisor.selection import candidate_gain
        from repro.advisor.cost import workload_cost

        stats, queries, first, _ = self._twin_setup()
        model = CostModel(PAGE)
        current = workload_cost(queries, stats, [], model).total
        previous = float("inf")
        for pages in (1, 2, 4, 8, 50, 200):
            sized = CandidateIndex(
                table="t1", key_columns=("a",), compressed=False,
                algorithm=None, size_bytes=float(pages * PAGE),
                size_source="schema")
            reduction, _ = candidate_gain(sized, queries, stats, [],
                                          model, current)
            assert reduction <= previous
            previous = reduction


class TestEngineBackedPath:
    def test_stats_for_tables(self, tables):
        stats = stats_for_tables(tables)
        assert set(stats) == set(tables)
        for name, table in tables.items():
            assert stats[name].rows == table.num_rows
            assert stats[name].heap_pages == table.heap.num_pages

    def test_batch_enumeration_shape(self, tables, queries):
        algorithms = ["null_suppression", "page"]
        candidates = enumerate_candidates_batch(
            tables, queries, algorithms=algorithms, fraction=0.05,
            seed=2)
        # 3 key sets -> 1 uncompressed + 2 compressed each.
        assert len(candidates) == 3 * (1 + len(algorithms))
        compressed = [c for c in candidates if c.compressed]
        assert all(c.size_source == "engine" for c in compressed)
        assert all(c.estimated_cf is not None and c.estimated_cf > 0
                   for c in compressed)

    def test_batch_enumeration_shares_samples(self, tables, queries):
        from repro.engine import EstimationEngine

        engine = EstimationEngine(seed=2)
        enumerate_candidates_batch(
            tables, queries, algorithms=["null_suppression", "page"],
            fraction=0.05, engine=engine)
        # One sample per table, reused by every candidate over it.
        assert engine.stats["samples_materialized"] == len(tables)
        assert engine.stats["index_reuse_hits"] >= 3

    def test_batch_enumeration_reproducible(self, tables, queries):
        one = enumerate_candidates_batch(
            tables, queries, algorithms=["null_suppression"],
            fraction=0.05, seed=9)
        two = enumerate_candidates_batch(
            tables, queries, algorithms=["null_suppression"],
            fraction=0.05, seed=9)
        assert [(c.name, c.size_bytes) for c in one] == \
            [(c.name, c.size_bytes) for c in two]

    def test_batch_enumeration_needs_algorithms(self, tables, queries):
        with pytest.raises(AdvisorError):
            enumerate_candidates_batch(tables, queries, algorithms=[])

    def test_engine_and_seed_together_rejected(self, tables, queries):
        from repro.engine import EstimationEngine

        with pytest.raises(AdvisorError):
            enumerate_candidates_batch(
                tables, queries, engine=EstimationEngine(seed=1), seed=5)

    def test_advise_from_data_end_to_end(self, tables, queries):
        result = advise_from_data(
            tables, queries, storage_bound_bytes=150_000,
            algorithms=["null_suppression", "page"], fraction=0.05,
            trials=2, model=CostModel(PAGE), seed=4)
        assert result.cost_after <= result.cost_before
        assert result.bytes_used <= result.storage_bound_bytes
        assert all(c.size_bytes <= 150_000 for c in result.chosen)

    def test_advise_from_data_close_to_exact_sizes(self, tables, queries):
        """Engine-estimated NS designs match the oracle design."""
        estimated = advise_from_data(
            tables, queries, storage_bound_bytes=200_000,
            algorithms=["null_suppression"], fraction=0.1, trials=3,
            model=CostModel(PAGE), seed=4)
        exact_candidates = enumerate_candidates(
            tables, queries, algorithm="null_suppression",
            size_source="exact")
        oracle = select_indexes(
            exact_candidates, queries, stats_for_tables(tables),
            200_000, CostModel(PAGE))
        design = {(c.table, c.key_columns, c.compressed)
                  for c in estimated.chosen}
        oracle_design = {(c.table, c.key_columns, c.compressed)
                         for c in oracle.chosen}
        assert design == oracle_design


class TestCapacity:
    def test_plan_totals(self, tables):
        plan = plan_capacity(list(tables.values()), fraction=0.05, seed=3)
        assert len(plan.entries) == 2
        assert plan.total_compressed_bytes < plan.total_uncompressed_bytes
        assert plan.total_high_bytes >= plan.total_compressed_bytes

    def test_ns_entries_have_intervals(self, tables):
        plan = plan_capacity(list(tables.values()), fraction=0.05, seed=3)
        assert all(entry.interval is not None for entry in plan.entries)

    def test_other_algorithms_no_interval(self, tables):
        plan = plan_capacity(list(tables.values()), algorithm="dictionary",
                             fraction=0.05, seed=3)
        assert all(entry.interval is None for entry in plan.entries)

    def test_describe(self, tables):
        plan = plan_capacity(list(tables.values()), fraction=0.05, seed=3)
        text = plan.describe()
        assert "TOTAL" in text
        assert "orders" in text

    def test_empty_rejected(self):
        with pytest.raises(AdvisorError):
            plan_capacity([])
