"""Unit tests for repro.sampling (rng, base, row samplers)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.base import rows_for_fraction
from repro.sampling.rng import make_rng, spawn_rngs
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithoutReplacementSampler,
                                         WithReplacementSampler)
from repro.core.cf_models import ColumnHistogram
from repro.storage.types import CharType


@pytest.fixture
def histogram() -> ColumnHistogram:
    values = [f"v{i}" for i in range(10)]
    counts = np.arange(1, 11) * 100
    return ColumnHistogram(CharType(8), values, counts)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_bad_seed_rejected(self):
        with pytest.raises(SamplingError):
            make_rng("seed")

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_negative_rejected(self):
        with pytest.raises(SamplingError):
            spawn_rngs(1, -1)


class TestRowsForFraction:
    def test_paper_example(self):
        assert rows_for_fraction(100_000_000, 0.01) == 1_000_000

    def test_rounding(self):
        assert rows_for_fraction(1000, 0.0015) == 2

    def test_minimum_one_row(self):
        assert rows_for_fraction(10, 0.001) == 1

    def test_invalid(self):
        with pytest.raises(SamplingError):
            rows_for_fraction(0, 0.1)
        with pytest.raises(SamplingError):
            rows_for_fraction(10, 0.0)
        with pytest.raises(SamplingError):
            rows_for_fraction(10, 1.5)


class TestWithReplacement:
    def test_positions_shape_and_range(self):
        sampler = WithReplacementSampler()
        positions = sampler.sample_positions(100, 50, make_rng(0))
        assert positions.shape == (50,)
        assert positions.min() >= 0
        assert positions.max() < 100

    def test_can_oversample(self):
        sampler = WithReplacementSampler()
        positions = sampler.sample_positions(10, 100, make_rng(0))
        assert positions.shape == (100,)

    def test_histogram_sample_mass(self, histogram):
        sampler = WithReplacementSampler()
        sample = sampler.sample_histogram(histogram, 200, make_rng(0))
        assert sample.n == 200
        assert sample.d <= histogram.d
        assert set(sample.values).issubset(set(histogram.values))

    def test_histogram_sample_unbiased_counts(self, histogram):
        sampler = WithReplacementSampler()
        rng = make_rng(3)
        totals = np.zeros(histogram.d)
        trials = 300
        for _ in range(trials):
            draw = rng.multinomial(100, histogram.counts / histogram.n)
            totals += draw
        expected = 100 * histogram.counts / histogram.n
        assert np.allclose(totals / trials, expected, rtol=0.2)

    def test_invalid_sizes(self):
        sampler = WithReplacementSampler()
        with pytest.raises(SamplingError):
            sampler.sample_positions(0, 5, make_rng(0))
        with pytest.raises(SamplingError):
            sampler.sample_positions(10, 0, make_rng(0))


class TestWithoutReplacement:
    def test_positions_distinct(self):
        sampler = WithoutReplacementSampler()
        positions = sampler.sample_positions(100, 50, make_rng(0))
        assert len(set(positions.tolist())) == 50

    def test_cannot_oversample(self):
        sampler = WithoutReplacementSampler()
        with pytest.raises(SamplingError):
            sampler.sample_positions(10, 11, make_rng(0))

    def test_full_sample_is_population(self, histogram):
        sampler = WithoutReplacementSampler()
        sample = sampler.sample_histogram(histogram, histogram.n,
                                          make_rng(0))
        assert sample.n == histogram.n
        assert sample.d == histogram.d
        assert np.array_equal(np.sort(sample.counts),
                              np.sort(histogram.counts))

    def test_histogram_sample_size(self, histogram):
        sampler = WithoutReplacementSampler()
        sample = sampler.sample_histogram(histogram, 500, make_rng(1))
        assert sample.n == 500
        # Without replacement can never exceed a value's true count.
        originals = dict(zip(histogram.values, histogram.counts))
        for value, count in zip(sample.values, sample.counts):
            assert count <= originals[value]


class TestBernoulli:
    def test_fraction_validation(self):
        with pytest.raises(SamplingError):
            BernoulliSampler(0.0)
        with pytest.raises(SamplingError):
            BernoulliSampler(1.5)

    def test_positions_distinct_and_sorted(self):
        sampler = BernoulliSampler(0.3)
        positions = sampler.sample_positions(1000, 0, make_rng(0))
        assert len(set(positions.tolist())) == len(positions)
        assert np.all(np.diff(positions) > 0)

    def test_expected_size(self):
        sampler = BernoulliSampler(0.2)
        sizes = [sampler.sample_positions(1000, 0, make_rng(seed)).size
                 for seed in range(50)]
        assert 150 < np.mean(sizes) < 250

    def test_never_empty(self):
        sampler = BernoulliSampler(0.0001)
        for seed in range(20):
            positions = sampler.sample_positions(10, 0, make_rng(seed))
            assert positions.size >= 1

    def test_histogram_thinning(self, histogram):
        sampler = BernoulliSampler(0.5)
        sample = sampler.sample_histogram(histogram, 0, make_rng(2))
        assert 0 < sample.n < histogram.n
