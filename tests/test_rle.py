"""Unit tests for repro.compression.rle."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import CharType, IntegerType, VarCharType
from repro.compression.rle import (RunLengthEncoding, RUN_COUNT_BYTES,
                                   rle_run_stored_size)


def char_records(values: list[str], k: int = 20) -> tuple:
    schema = single_char_schema(k)
    return schema, [encode_record(schema, (v,)) for v in values]


class TestRunLengthEncoding:
    def test_single_run(self):
        schema, records = char_records(["abc"] * 50)
        block = RunLengthEncoding().compress(records, schema)
        assert block.payload_size == RUN_COUNT_BYTES + 1 + 3

    def test_sorted_runs_counted(self):
        schema, records = char_records(["a"] * 5 + ["bb"] * 3 + ["c"] * 2)
        block = RunLengthEncoding().compress(records, schema)
        expected = (RUN_COUNT_BYTES + 1 + 1) + (RUN_COUNT_BYTES + 1 + 2) \
            + (RUN_COUNT_BYTES + 1 + 1)
        assert block.payload_size == expected

    def test_alternating_values_make_many_runs(self):
        schema, records = char_records(["a", "b"] * 10)
        block = RunLengthEncoding().compress(records, schema)
        assert block.payload_size == 20 * (RUN_COUNT_BYTES + 1 + 1)

    def test_roundtrip(self):
        schema, records = char_records(
            ["aa"] * 3 + [""] * 2 + ["aa"] + ["zz z"] * 4)
        algorithm = RunLengthEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_roundtrip_integers(self):
        schema = Schema([Column("n", IntegerType())])
        records = [encode_record(schema, (v,))
                   for v in (1, 1, 1, -5, -5, 70000)]
        algorithm = RunLengthEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_roundtrip_varchar(self):
        schema = Schema([Column("v", VarCharType(20))])
        records = [encode_record(schema, (v,))
                   for v in ("aa", "aa", "b  ", "b  ", "")]
        algorithm = RunLengthEncoding()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            RunLengthEncoding().compress([], single_char_schema(5))

    def test_row_count_mismatch_detected(self):
        schema, records = char_records(["a", "a", "b"])
        block = RunLengthEncoding().compress(records, schema)
        from repro.compression.base import CompressedBlock
        wrong = CompressedBlock(algorithm=block.algorithm, row_count=5,
                                columns=block.columns)
        with pytest.raises(CompressionError):
            RunLengthEncoding().decompress(wrong, schema)

    def test_run_stored_size_helper(self):
        dtype = CharType(20)
        assert rle_run_stored_size(dtype, dtype.encode("abc")) == \
            RUN_COUNT_BYTES + 1 + 3
        vdtype = VarCharType(9)
        assert rle_run_stored_size(vdtype, vdtype.encode("abc")) == \
            RUN_COUNT_BYTES + 2 + 3

    def test_tracker_matches_compress_in_order(self):
        values = ["a"] * 4 + ["b"] * 2 + ["a"]  # out-of-order rerun
        schema, records = char_records(values)
        algorithm = RunLengthEncoding()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_tracker_preview(self):
        schema, records = char_records(["aa", "aa"])
        tracker = RunLengthEncoding().make_tracker(schema)
        tracker.add([records[0]])
        assert tracker.size_with([records[1]]) == tracker.size
        new_record = encode_record(schema, ("zz",))
        assert tracker.size_with([new_record]) > tracker.size

    def test_multi_column_runs_independent(self):
        schema = Schema([Column.of("a", "char(4)"),
                         Column.of("b", "char(4)")])
        rows = [("x", "p"), ("x", "q"), ("x", "q")]
        records = [encode_record(schema, row) for row in rows]
        block = RunLengthEncoding().compress(records, schema)
        # Column a: 1 run; column b: 2 runs.
        assert block.columns[0].payload_size == RUN_COUNT_BYTES + 1 + 1
        assert block.columns[1].payload_size == 2 * (RUN_COUNT_BYTES + 1 + 1)
