"""Unit tests for repro.compression.prefix."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import IntegerType
from repro.compression.prefix import PrefixCompression, common_prefix


def char_records(values: list[str], k: int = 20) -> tuple:
    schema = single_char_schema(k)
    return schema, [encode_record(schema, (v,)) for v in values]


class TestCommonPrefix:
    def test_shared(self):
        assert common_prefix([b"sku-001", b"sku-002", b"sku-1"]) == b"sku-"

    def test_identical(self):
        assert common_prefix([b"same", b"same"]) == b"same"

    def test_none_shared(self):
        assert common_prefix([b"abc", b"xyz"]) == b""

    def test_single_value(self):
        assert common_prefix([b"only"]) == b"only"

    def test_empty_input_rejected(self):
        with pytest.raises(CompressionError):
            common_prefix([])


class TestPrefixCompression:
    def test_payload_formula(self):
        values = ["SKU-aa", "SKU-bb", "SKU-c"]
        schema, records = char_records(values)
        block = PrefixCompression().compress(records, schema)
        prefix_len = 4
        remainders = [len(v) - prefix_len for v in values]
        expected = (1 + prefix_len) + sum(1 + r for r in remainders)
        assert block.payload_size == expected

    def test_roundtrip(self):
        values = ["pre-a", "pre-bb", "pre-", "pre-ccc x"]
        schema, records = char_records(values)
        algorithm = PrefixCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_no_common_prefix_degrades_to_ns(self):
        values = ["abc", "xyz"]
        schema, records = char_records(values)
        block = PrefixCompression().compress(records, schema)
        # Empty prefix: (c + 0) + sum(c + l) = NS payload + 1.
        assert block.payload_size == 1 + (1 + 3) + (1 + 3)

    def test_value_equal_to_prefix(self):
        values = ["ab", "ab", "abx"]
        schema, records = char_records(values)
        algorithm = PrefixCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_integer_fallback_roundtrip(self):
        schema = Schema([Column("n", IntegerType())])
        records = [encode_record(schema, (v,)) for v in (7, 300, -2)]
        algorithm = PrefixCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_mixed_schema(self):
        schema = Schema([Column.of("s", "char(12)"),
                         Column.of("n", "integer")])
        records = [encode_record(schema, ("pre-x", 1)),
                   encode_record(schema, ("pre-y", 70000))]
        algorithm = PrefixCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_tracker_matches_compress(self):
        values = ["pre-a", "pre-bb", "pre-", "other"]
        schema, records = char_records(values)
        algorithm = PrefixCompression()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_tracker_handles_prefix_shrink(self):
        schema, records = char_records(["aaaa-x", "aaaa-y", "ab"])
        algorithm = PrefixCompression()
        tracker = algorithm.make_tracker(schema)
        tracker.add([records[0]])
        tracker.add([records[1]])
        size_before = tracker.size
        tracker.add([records[2]])  # prefix shrinks from 'aaaa-' to 'a'
        assert tracker.size > size_before
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            PrefixCompression().compress([], single_char_schema(5))
