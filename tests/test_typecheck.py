"""The mypy leg of the invariant gate (skipped where mypy is absent).

The container that runs tier-1 tests does not ship mypy; CI installs
it for the typecheck job. Running it through the pytest gate too means
``pip install mypy && pytest tests/test_typecheck.py`` reproduces the
CI result locally with no extra wiring — the configuration lives in
``mypy.ini`` either way.
"""

import pathlib
import sys

import pytest

mypy_api = pytest.importorskip("mypy.api",
                               reason="mypy is not installed; the CI "
                                      "typecheck job runs this leg")

REPO = pathlib.Path(__file__).parent.parent


def test_src_typechecks_under_project_config():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO / "mypy.ini"), str(REPO / "src")])
    sys.stdout.write(stdout)
    sys.stderr.write(stderr)
    assert status == 0, "mypy reported errors (see stdout)"
