"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListings:
    def test_algorithms(self, capsys):
        code, out, _ = run_cli(capsys, "algorithms")
        assert code == 0
        assert "null_suppression" in out
        assert "global_dictionary" in out
        assert "index" in out and "page" in out

    def test_scenarios(self, capsys):
        code, out, _ = run_cli(capsys, "scenarios")
        assert code == 0
        assert "customer_names" in out
        assert "char(40)" in out

    def test_experiments(self, capsys):
        code, out, _ = run_cli(capsys, "experiments")
        assert code == 0
        assert "Theorem 1" in out
        assert "bench_table2_summary.py" in out


class TestEstimate:
    def test_explicit_workload(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--fraction", "0.05", "--seed", "1")
        assert code == 0
        assert "CF' =" in out
        assert "n=10,000" in out

    def test_scenario_workload(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--scenario", "status_codes", "--rows",
            "5000", "--fraction", "0.1", "--seed", "2")
        assert code == 0
        assert "status_codes" in out

    def test_with_truth_and_trials(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "20000", "--d", "50", "--k",
            "20", "--fraction", "0.05", "--trials", "10", "--truth",
            "--seed", "3")
        assert code == 0
        assert "mean CF'" in out
        assert "ratio err" in out
        assert "bias" in out

    def test_algorithm_choice(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "10", "--k",
            "20", "--algorithm", "rle", "--fraction", "0.1", "--seed",
            "4")
        assert code == 0
        assert "rle" in out

    def test_missing_d_k_is_an_error(self, capsys):
        code, _out, err = run_cli(
            capsys, "estimate", "--n", "1000", "--fraction", "0.1")
        assert code == 1
        assert "error" in err

    def test_reproducible(self, capsys):
        _, first, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--seed", "9")
        _, second, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--seed", "9")
        assert first == second


class TestBounds:
    def test_theorem1_paper_example(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem1", "--n", "100000000",
            "--fraction", "0.01")
        assert code == 0
        assert "0.0005" in out

    def test_theorem2(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem2", "--n", "1000000", "--d",
            "1000", "--k", "20", "--fraction", "0.01")
        assert code == 0
        assert "Theorem 2" in out
        assert "overestimate" in out

    def test_theorem3(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem3", "--alpha", "0.5", "--k", "20",
            "--fraction", "0.01")
        assert code == 0
        assert "Theorem 3" in out

    def test_invalid_alpha_reports_error(self, capsys):
        code, _out, err = run_cli(
            capsys, "bounds", "theorem3", "--alpha", "1.5", "--k", "20",
            "--fraction", "0.01")
        assert code == 1
        assert "error" in err


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
