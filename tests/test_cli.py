"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


BATCH_SPEC = {
    "seed": 7,
    "workloads": {
        "names": {"scenario": "status_codes", "rows": 4000},
        "ids": {"n": 3000, "d": 30, "k": 20, "storage": True,
                "page_size": 1024},
    },
    "requests": [
        {"workload": "names", "algorithm": "null_suppression",
         "fraction": 0.02, "trials": 3},
        {"workload": "names", "algorithm": "rle", "fraction": 0.02},
        {"workload": "ids", "algorithm": "null_suppression",
         "fraction": 0.05, "trials": 2},
        {"workload": "ids", "algorithm": "rle", "fraction": 0.05,
         "trials": 2},
    ],
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(BATCH_SPEC), encoding="utf-8")
    return str(path)


class TestListings:
    def test_algorithms(self, capsys):
        code, out, _ = run_cli(capsys, "algorithms")
        assert code == 0
        assert "null_suppression" in out
        assert "global_dictionary" in out
        assert "index" in out and "page" in out

    def test_scenarios(self, capsys):
        code, out, _ = run_cli(capsys, "scenarios")
        assert code == 0
        assert "customer_names" in out
        assert "char(40)" in out

    def test_experiments(self, capsys):
        code, out, _ = run_cli(capsys, "experiments")
        assert code == 0
        assert "Theorem 1" in out
        assert "bench_table2_summary.py" in out


class TestEstimate:
    def test_explicit_workload(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--fraction", "0.05", "--seed", "1")
        assert code == 0
        assert "CF' =" in out
        assert "n=10,000" in out

    def test_scenario_workload(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--scenario", "status_codes", "--rows",
            "5000", "--fraction", "0.1", "--seed", "2")
        assert code == 0
        assert "status_codes" in out

    def test_with_truth_and_trials(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "20000", "--d", "50", "--k",
            "20", "--fraction", "0.05", "--trials", "10", "--truth",
            "--seed", "3")
        assert code == 0
        assert "mean CF'" in out
        assert "ratio err" in out
        assert "bias" in out

    def test_adaptive_trials(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "20000", "--d", "50", "--k", "16",
            "--trials", "8", "--adaptive", "--tolerance", "0.5")
        assert code == 0
        assert "converged" in out
        assert "stages 1/1" in out

    def test_adaptive_needs_a_budget(self, capsys):
        code, _, err = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "10", "--k", "8",
            "--adaptive")
        assert code == 1
        assert "--trials" in err

    def test_algorithm_choice(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "10", "--k",
            "20", "--algorithm", "rle", "--fraction", "0.1", "--seed",
            "4")
        assert code == 0
        assert "rle" in out

    def test_missing_d_k_is_an_error(self, capsys):
        code, _out, err = run_cli(
            capsys, "estimate", "--n", "1000", "--fraction", "0.1")
        assert code == 1
        assert "error" in err

    def test_reproducible(self, capsys):
        _, first, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--seed", "9")
        _, second, _ = run_cli(
            capsys, "estimate", "--n", "10000", "--d", "100", "--k",
            "20", "--seed", "9")
        assert first == second

    def test_unknown_algorithm_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["estimate", "--n", "1000", "--d", "10", "--k", "20",
                  "--algorithm", "middle_out"])
        assert excinfo.value.code == 2

    def test_unknown_scenario_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["estimate", "--scenario", "no_such_scenario"])
        assert excinfo.value.code == 2


class TestEstimateBatch:
    def test_happy_path_output_shape(self, capsys, spec_path):
        code, out, _ = run_cli(capsys, "estimate-batch", spec_path)
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"seed", "executor", "store_dir", "plan",
                                "results", "stats"}
        assert payload["store_dir"] is None
        assert payload["seed"] == 7
        assert len(payload["results"]) == len(BATCH_SPEC["requests"])
        first = payload["results"][0]
        assert first["workload"] == "names"
        assert first["path"] == "histogram"
        assert len(first["estimates"]) == first["trials"] == 3
        assert first["std"] is not None
        single = payload["results"][1]
        assert single["trials"] == 1
        assert single["std"] is None
        storage = payload["results"][2]
        assert storage["path"] == "storage"

    def test_reuse_visible_in_stats(self, capsys, spec_path):
        code, out, _ = run_cli(capsys, "estimate-batch", spec_path)
        assert code == 0
        payload = json.loads(out)
        stats = payload["stats"]
        # Both storage requests share one sample per trial, and the
        # second algorithm reuses the first's built sample index.
        assert stats["sample_cache_hits"] >= 2
        assert stats["index_reuse_hits"] >= 2
        assert payload["plan"]["samples_to_materialize"] < \
            payload["plan"]["trial_units"]

    def test_executor_does_not_change_results(self, capsys, spec_path):
        _, serial_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                   "--executor", "serial")
        _, threads_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                    "--executor", "threads",
                                    "--workers", "3")
        serial = json.loads(serial_out)
        threads = json.loads(threads_out)
        assert serial["results"] == threads["results"]

    def test_process_executor_matches_serial(self, capsys, spec_path):
        _, serial_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                   "--executor", "serial")
        _, process_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                    "--executor", "process",
                                    "--workers", "2")
        serial = json.loads(serial_out)
        process = json.loads(process_out)
        assert serial["results"] == process["results"]
        assert process["executor"] == "process"

    def test_remote_executor_matches_serial(self, capsys, spec_path):
        """Full CLI loop: worker serve subprocesses + --executor remote."""
        from repro.engine.remote import spawn_local_workers

        processes, addresses = spawn_local_workers(2)
        try:
            workers = ",".join(f"{host}:{port}"
                               for host, port in addresses)
            _, serial_out, _ = run_cli(capsys, "estimate-batch",
                                       spec_path, "--executor", "serial")
            _, remote_out, _ = run_cli(capsys, "estimate-batch",
                                       spec_path, "--executor", "remote",
                                       "--workers", workers)
            serial = json.loads(serial_out)
            remote = json.loads(remote_out)
            assert serial["results"] == remote["results"]
            assert remote["executor"] == "remote"
            assert remote["stats"]["remote_units"] > 0
            assert remote["stats"]["remote_fallback_units"] == 0
        finally:
            for process in processes:
                process.terminate()
            for process in processes:
                process.wait(timeout=10)

    def test_remote_worker_count_is_rejected(self, capsys, spec_path):
        """--workers must be host:port for remote, a count otherwise."""
        code, _, err = run_cli(capsys, "estimate-batch", spec_path,
                               "--executor", "threads",
                               "--workers", "hostA:7071")
        assert code == 1
        assert "host:port" in err

    def test_seed_override_changes_estimates(self, capsys, spec_path):
        _, one, _ = run_cli(capsys, "estimate-batch", spec_path,
                            "--seed", "1")
        _, two, _ = run_cli(capsys, "estimate-batch", spec_path,
                            "--seed", "2")
        assert json.loads(one)["results"] != json.loads(two)["results"]

    def test_missing_spec_file(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "estimate-batch", str(tmp_path / "absent.json"))
        assert code == 1
        assert "error" in err

    def test_invalid_json(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        code, _out, err = run_cli(capsys, "estimate-batch", str(path))
        assert code == 1
        assert "not valid JSON" in err

    def test_unknown_workload_reference(self, capsys, tmp_path):
        spec = {"workloads": {"w": {"n": 100, "d": 5, "k": 8}},
                "requests": [{"workload": "nope"}]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _out, err = run_cli(capsys, "estimate-batch", str(path))
        assert code == 1
        assert "unknown workload" in err

    def test_unknown_algorithm_in_spec(self, capsys, tmp_path):
        spec = {"workloads": {"w": {"n": 100, "d": 5, "k": 8}},
                "requests": [{"workload": "w",
                              "algorithm": "middle_out"}]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _out, err = run_cli(capsys, "estimate-batch", str(path))
        assert code == 1
        assert "middle_out" in err

    def test_workload_needs_shape_or_scenario(self, capsys, tmp_path):
        spec = {"workloads": {"w": {"n": 100}},
                "requests": [{"workload": "w"}]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _out, err = run_cli(capsys, "estimate-batch", str(path))
        assert code == 1
        assert "'scenario' or all of" in err

    def test_empty_requests_rejected(self, capsys, tmp_path):
        spec = {"workloads": {"w": {"n": 100, "d": 5, "k": 8}},
                "requests": []}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _out, err = run_cli(capsys, "estimate-batch", str(path))
        assert code == 1
        assert "requests" in err

    def test_stdin_spec(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin",
                            io.StringIO(json.dumps(BATCH_SPEC)))
        code, out, _ = run_cli(capsys, "estimate-batch", "-")
        assert code == 0
        assert json.loads(out)["plan"]["requests"] == 4


ADVISE_SPEC = {
    "tables": {
        "orders": {"n": 1200,
                   "columns": [["status", 10, 5], ["customer", 24, 150]],
                   "page_size": 1024, "seed": 5},
        "parts": {"n": 700, "d": 60, "k": 20, "seed": 6,
                  "page_size": 1024},
    },
    "queries": [
        {"name": "q_status", "table": "orders", "columns": ["status"],
         "selectivity": 0.2, "weight": 10},
        {"name": "q_customer", "table": "orders",
         "columns": ["customer"], "selectivity": 0.05, "weight": 5},
        {"name": "q_a", "table": "parts", "columns": ["a"],
         "selectivity": 0.1, "weight": 2},
    ],
    "storage_bound_bytes": 60_000,
    "algorithms": ["null_suppression", "dictionary"],
    "fraction": 0.1,
    "trials": 3,
    "seed": 9,
}


@pytest.fixture
def advise_path(tmp_path):
    path = tmp_path / "design.json"
    path.write_text(json.dumps(ADVISE_SPEC), encoding="utf-8")
    return str(path)


class TestAdvise:
    def test_eager_mode(self, capsys, advise_path):
        code, out, _ = run_cli(capsys, "advise", advise_path)
        assert code == 0
        payload = json.loads(out)
        assert payload["mode"] == "eager"
        assert payload["cost_after"] <= payload["cost_before"]
        assert payload["bytes_used"] <= payload["storage_bound_bytes"]
        assert "what_if" not in payload

    def test_what_if_mode_matches_eager(self, capsys, advise_path):
        code, eager_out, _ = run_cli(capsys, "advise", advise_path)
        assert code == 0
        code, lazy_out, _ = run_cli(capsys, "advise", advise_path,
                                    "--what-if")
        assert code == 0
        eager = json.loads(eager_out)
        lazy = json.loads(lazy_out)
        assert lazy["mode"] == "what-if"
        assert lazy["chosen"] == eager["chosen"]
        assert lazy["steps"] == eager["steps"]
        assert lazy["cost_after"] == eager["cost_after"]
        report = lazy["what_if"]
        assert report["units_executed"] <= report["units_eager"]
        assert lazy["engine"]["trials"] == report["units_executed"]

    def test_what_if_flags(self, capsys, advise_path):
        code, out, _ = run_cli(capsys, "advise", advise_path,
                               "--what-if", "--no-prune",
                               "--no-adaptive", "--max-trials", "2")
        assert code == 0
        payload = json.loads(out)
        assert payload["prune"] is False
        assert payload["adaptive"] is False
        assert payload["max_trials"] == 2
        assert payload["what_if"]["max_trials"] == 2

    def test_storage_bound_override(self, capsys, advise_path):
        code, out, _ = run_cli(capsys, "advise", advise_path,
                               "--what-if", "--storage-bound", "10")
        assert code == 0
        payload = json.loads(out)
        assert payload["storage_bound_bytes"] == 10.0
        assert payload["chosen"] == []

    def test_store_dir_warm_start(self, capsys, advise_path, tmp_path):
        store = str(tmp_path / "store")
        code, cold_out, _ = run_cli(capsys, "advise", advise_path,
                                    "--what-if", "--store-dir", store)
        assert code == 0
        code, warm_out, _ = run_cli(capsys, "advise", advise_path,
                                    "--what-if", "--store-dir", store)
        assert code == 0
        cold = json.loads(cold_out)
        warm = json.loads(warm_out)
        assert warm["chosen"] == cold["chosen"]
        assert warm["engine"]["samples_materialized"] == 0

    def test_missing_sections_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"tables": {}}), encoding="utf-8")
        code, _, err = run_cli(capsys, "advise", str(path))
        assert code == 1
        assert "tables" in err

    def test_missing_bound_rejected(self, capsys, tmp_path):
        spec = {k: v for k, v in ADVISE_SPEC.items()
                if k != "storage_bound_bytes"}
        path = tmp_path / "nobound.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _, err = run_cli(capsys, "advise", str(path))
        assert code == 1
        assert "storage_bound_bytes" in err

    def test_unknown_query_table_rejected(self, capsys, tmp_path):
        spec = dict(ADVISE_SPEC)
        spec["queries"] = [{"table": "ghost", "columns": ["a"]}]
        path = tmp_path / "ghost.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _, err = run_cli(capsys, "advise", str(path))
        assert code == 1
        assert "ghost" in err

    def test_bad_columns_spec_rejected(self, capsys, tmp_path):
        spec = dict(ADVISE_SPEC)
        spec["tables"] = {"orders": {"n": 100, "columns": [["only-two",
                                                           10]]}}
        path = tmp_path / "badcols.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        code, _, err = run_cli(capsys, "advise", str(path))
        assert code == 1
        assert "columns" in err


class TestBounds:
    def test_theorem1_paper_example(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem1", "--n", "100000000",
            "--fraction", "0.01")
        assert code == 0
        assert "0.0005" in out

    def test_theorem2(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem2", "--n", "1000000", "--d",
            "1000", "--k", "20", "--fraction", "0.01")
        assert code == 0
        assert "Theorem 2" in out
        assert "overestimate" in out

    def test_theorem3(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "theorem3", "--alpha", "0.5", "--k", "20",
            "--fraction", "0.01")
        assert code == 0
        assert "Theorem 3" in out

    def test_invalid_alpha_reports_error(self, capsys):
        code, _out, err = run_cli(
            capsys, "bounds", "theorem3", "--alpha", "1.5", "--k", "20",
            "--fraction", "0.01")
        assert code == 1
        assert "error" in err


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestStoreDir:
    def test_warm_batch_materializes_nothing(self, capsys, spec_path,
                                             tmp_path):
        store_dir = str(tmp_path / "store")
        code, cold_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                    "--store-dir", store_dir)
        assert code == 0
        code, warm_out, _ = run_cli(capsys, "estimate-batch", spec_path,
                                    "--store-dir", store_dir)
        assert code == 0
        cold = json.loads(cold_out)
        warm = json.loads(warm_out)
        assert cold["store_dir"] == store_dir
        assert cold["stats"]["samples_materialized"] > 0
        assert warm["stats"]["samples_materialized"] == 0
        assert warm["stats"]["estimate_store_hits"] == \
            warm["stats"]["trials"]
        assert [r["estimates"] for r in cold["results"]] == \
            [r["estimates"] for r in warm["results"]]

    def test_store_does_not_change_estimates(self, capsys, spec_path,
                                             tmp_path):
        code, bare_out, _ = run_cli(capsys, "estimate-batch", spec_path)
        code, stored_out, _ = run_cli(
            capsys, "estimate-batch", spec_path,
            "--store-dir", str(tmp_path / "store"))
        bare = json.loads(bare_out)
        stored = json.loads(stored_out)
        assert [r["estimates"] for r in bare["results"]] == \
            [r["estimates"] for r in stored["results"]]

    def test_estimate_single_uses_store(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        args = ("estimate", "--scenario", "status_codes", "--rows",
                "3000", "--fraction", "0.02", "--seed", "3",
                "--store-dir", store_dir)
        code, first, _ = run_cli(capsys, *args)
        assert code == 0
        code, second, _ = run_cli(capsys, *args)
        assert code == 0
        assert first == second
        code, stats_out, _ = run_cli(capsys, "cache", "stats",
                                     "--store-dir", store_dir)
        assert code == 0
        assert "estimates" in stats_out


class TestCacheCommands:
    def _populate(self, capsys, spec_path, store_dir):
        code, _, _ = run_cli(capsys, "estimate-batch", spec_path,
                             "--store-dir", store_dir)
        assert code == 0

    def test_stats_lists_kinds(self, capsys, spec_path, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(capsys, spec_path, store_dir)
        code, out, _ = run_cli(capsys, "cache", "stats",
                               "--store-dir", store_dir)
        assert code == 0
        for word in ("samples", "estimates", "quarantined", "total",
                     "size budget"):
            assert word in out

    def test_prune_respects_budget(self, capsys, spec_path, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(capsys, spec_path, store_dir)
        code, out, _ = run_cli(capsys, "cache", "prune",
                               "--store-dir", store_dir,
                               "--max-bytes", "2000")
        assert code == 0
        assert "evicted" in out
        from repro.store import SampleStore

        assert SampleStore(store_dir).stats()["total_bytes"] <= 2000

    def test_clear_empties_store(self, capsys, spec_path, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(capsys, spec_path, store_dir)
        code, out, _ = run_cli(capsys, "cache", "clear",
                               "--store-dir", store_dir)
        assert code == 0
        assert "removed" in out
        code, out, _ = run_cli(capsys, "cache", "stats",
                               "--store-dir", store_dir)
        assert "total       | 0" in out

    def test_cache_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestLint:
    def test_shipped_tree_is_clean(self, capsys):
        code, out, _ = run_cli(capsys, "lint")
        assert code == 0
        assert "clean" in out

    def test_findings_set_exit_code(self, capsys, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "import threading\n"
            "from dataclasses import dataclass, field\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class State:\n"
            "    lock: threading.Lock = field("
            "default_factory=threading.Lock)\n",
            encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 1
        assert "RPL003" in out

    def test_select_and_json_format(self, capsys, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("import threading\n"
                        "from dataclasses import dataclass, field\n"
                        "\n"
                        "\n"
                        "@dataclass\n"
                        "class State:\n"
                        "    lock: threading.Lock = field("
                        "default_factory=threading.Lock)\n",
                        encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", "--select", "RPL001",
                               "--format", "json", str(path))
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["total"] == 0
        code, out, _ = run_cli(capsys, "lint", "--format", "json",
                               str(path))
        assert code == 1
        assert json.loads(out)["summary"]["by_code"]["RPL003"] == 1

    def test_fixture_corpus_mode(self, capsys):
        import pathlib
        fixtures = pathlib.Path(__file__).parent / "analysis_fixtures"
        code, out, _ = run_cli(capsys, "lint", "--fixtures",
                               str(fixtures))
        assert code == 0
        assert "behave as declared" in out
