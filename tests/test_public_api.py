"""The public API surface: exports resolve, are documented, and the
advertised quickstart works as written in the package docstring."""

import importlib

import pytest

import repro

SUBPACKAGES = ("storage", "compression", "sampling", "core", "workloads",
               "advisor", "experiments", "engine", "store")


class TestExports:
    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_subpackage_all_resolves(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        assert module.__doc__, subpackage
        for name in module.__all__:
            assert hasattr(module, name), f"{subpackage}.{name}"

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestDocstrings:
    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_public_callables_documented(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if getattr(obj, "__module__", "") == "typing":
                continue  # type aliases (e.g. Literal) carry no docs
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, \
            f"{subpackage} exports lack docstrings: {undocumented}"


class TestQuickstartContract:
    def test_package_docstring_example_runs(self):
        from repro import (SampleCF, NullSuppression, make_table,
                           true_cf_table)

        table = make_table(n=2_000, d=50, k=20, seed=7)
        estimator = SampleCF(NullSuppression())
        estimate = estimator.estimate_table(table, 0.05, ["a"], seed=7)
        truth = true_cf_table(table, ["a"], NullSuppression())
        assert 0 < estimate.estimate < 1.5
        assert 0 < truth < 1.5

    def test_registry_and_scenarios_nonempty(self):
        assert len(repro.list_algorithms()) >= 8
        assert len(repro.SCENARIOS) >= 7
        assert len(repro.EXPERIMENTS) >= 14

    def test_errors_are_catchable_by_base(self):
        with pytest.raises(repro.ReproError):
            repro.get_algorithm("no_such_algorithm")
        with pytest.raises(repro.ReproError):
            repro.get_scenario("no_such_scenario")
        with pytest.raises(repro.ReproError):
            repro.CharType(0)
