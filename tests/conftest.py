"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cf_models import ColumnHistogram
from repro.storage.schema import single_char_schema
from repro.storage.table import Table
from repro.storage.types import CharType
from repro.compression.delta import DeltaEncoding
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.compression.page_compression import PageCompression
from repro.compression.prefix import PrefixCompression
from repro.compression.rle import RunLengthEncoding

#: Small page size used to force multi-page layouts cheaply in tests.
SMALL_PAGE = 256


def all_algorithms() -> list:
    """Fresh instances of every compression algorithm."""
    return [
        NullSuppression(),
        NullSuppression(mode="runs"),
        DictionaryCompression(),
        DictionaryCompression(pointer_bytes=None),
        DictionaryCompression(entry_storage="null_suppressed"),
        GlobalDictionaryCompression(),
        GlobalDictionaryCompression(pointer_bytes=None),
        RunLengthEncoding(),
        PrefixCompression(),
        PageCompression(),
        DeltaEncoding(),
    ]


def modelable_algorithms() -> list:
    """Algorithms with a closed-form histogram model."""
    return [
        NullSuppression(),
        NullSuppression(mode="runs"),
        DictionaryCompression(),
        GlobalDictionaryCompression(),
        RunLengthEncoding(),
    ]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def char20() -> CharType:
    return CharType(20)


@pytest.fixture
def small_histogram(char20: CharType) -> ColumnHistogram:
    """50 distinct values, mixed lengths, ~5k rows."""
    values = [f"v{i:02d}" + "x" * (i % 12) for i in range(50)]
    counts = np.arange(1, 51) * 4
    return ColumnHistogram(char20, values, counts)


@pytest.fixture
def tiny_table() -> Table:
    """A 200-row single-column table over a tiny value domain."""
    generator = np.random.default_rng(7)
    domain = ["alpha", "beta", "gamma", "delta", "epsilon longer value"]
    rows = [(domain[int(generator.integers(0, len(domain)))],)
            for _ in range(200)]
    return Table.from_rows("tiny", single_char_schema(20), rows,
                           page_size=SMALL_PAGE)


@pytest.fixture
def medium_table() -> Table:
    """A 5000-row table with 100 distinct values, shuffled layout."""
    from repro.workloads.generators import make_table

    return make_table(n=5000, d=100, k=20, distribution="zipf",
                      order="shuffled", page_size=1024, seed=99)
