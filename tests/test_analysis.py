"""Unit tests for repro.analysis — the invariant linter machinery."""

import json
import textwrap

import pytest

from repro.analysis import (LintConfig, lint_paths, render_findings,
                            rule_codes)
from repro.analysis.callgraph import match_roots, reachable_from
from repro.analysis.runner import build_index
from repro.analysis.suppressions import parse_suppressions


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint_source(tmp_path, source, **config_kwargs):
    path = write_module(tmp_path, "fixture.py", source)
    return lint_paths([path], LintConfig(**config_kwargs))


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------
class TestSuppressions:
    CODES = {"RPL001", "RPL003"}

    def test_trailing_comment_covers_its_own_line(self):
        table = parse_suppressions(
            ["x = noise()  # repro-lint: ignore[RPL001] -- why"],
            self.CODES)
        assert not table.problems
        (suppression,) = table.suppressions
        assert suppression.covers == 1
        assert suppression.matches("RPL001", 1)
        assert not suppression.matches("RPL003", 1)

    def test_standalone_comment_covers_next_code_line(self):
        table = parse_suppressions(
            ["# repro-lint: ignore[RPL001] -- first line of a",
             "# two-line rationale",
             "x = noise()"], self.CODES)
        (suppression,) = table.suppressions
        assert suppression.covers == 3

    def test_missing_rationale_is_a_problem(self):
        table = parse_suppressions(
            ["# repro-lint: ignore[RPL001]"], self.CODES)
        assert not table.suppressions
        (problem,) = table.problems
        assert "rationale" in problem[1]

    def test_unknown_code_is_a_problem(self):
        table = parse_suppressions(
            ["# repro-lint: ignore[RPL999] -- nope"], self.CODES)
        assert not table.suppressions
        (problem,) = table.problems
        assert "RPL999" in problem[1]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        result = lint_source(tmp_path, '''\
            """Docs showing `# repro-lint: ignore[RPL001] -- why`."""
            X = 1
            ''')
        assert result.ok

    def test_unused_suppression_fires_meta_rule(self, tmp_path):
        result = lint_source(tmp_path, """\
            # repro-lint: ignore[RPL004] -- stale waiver
            X = 1
            """)
        (finding,) = result.findings
        assert finding.code == "RPL000"
        assert "unused" in finding.message

    def test_multiline_statement_fully_covered(self, tmp_path):
        # The suppressed call sits on the *second* physical line of the
        # statement under the comment; the whole span must be covered.
        result = lint_source(tmp_path, """\
            import time

            def run_unit():
                # repro-lint: ignore[RPL001] -- wall-clock metadata only
                return dict(kind="sample",
                            created=time.time())
            """, entropy_roots=("run_unit",))
        assert result.ok
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# Call graph and reachability
# ----------------------------------------------------------------------
class TestCallGraph:
    SOURCE = """\
        import helpers

        class Engine:
            def run(self):
                return self._step()

            def _step(self):
                return draw()

        def draw():
            return helpers.noise()

        def unrelated():
            return 42
        """

    HELPERS = """\
        import random

        def noise():
            return random.random()
        """

    def build(self, tmp_path):
        write_module(tmp_path, "main.py", self.SOURCE)
        write_module(tmp_path, "helpers.py", self.HELPERS)
        return build_index([tmp_path])

    def test_reachability_crosses_modules_and_methods(self, tmp_path):
        index = self.build(tmp_path)
        chains = reachable_from(index, ("Engine.run",))
        names = {function.qualname.split(":")[1]
                 for function in chains}
        assert {"Engine.run", "Engine._step", "draw",
                "noise"} <= names
        assert "unrelated" not in names

    def test_chains_record_shortest_path(self, tmp_path):
        index = self.build(tmp_path)
        chains = reachable_from(index, ("Engine.run",))
        noise = next(f for f in chains
                     if f.qualname.endswith(":noise"))
        assert chains[noise][0].endswith("Engine.run")
        assert chains[noise][-1].endswith("noise")

    def test_match_roots_supports_globs(self, tmp_path):
        index = self.build(tmp_path)
        assert match_roots(index, ("helpers:*",))
        assert not match_roots(index, ("nonexistent:*",))


# ----------------------------------------------------------------------
# Individual rules on minimal sources
# ----------------------------------------------------------------------
class TestRules:
    def test_rpl001_flags_reachable_entropy_only(self, tmp_path):
        result = lint_source(tmp_path, """\
            import random, time

            def run_unit():
                return helper()

            def helper():
                return random.random()

            def reporting():
                return time.time()
            """, entropy_roots=("run_unit",))
        (finding,) = result.findings
        assert finding.code == "RPL001"
        assert "random" in finding.message
        assert "run_unit" in finding.details["reachable_via"]

    def test_rpl001_flags_builtin_hash(self, tmp_path):
        result = lint_source(tmp_path, """\
            def make_key(name):
                return hash(name) % 997
            """, entropy_roots=("make_key",))
        (finding,) = result.findings
        assert finding.code == "RPL001"
        assert "PYTHONHASHSEED" in finding.message

    def test_rpl001_allows_seeded_default_rng(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            def run_unit(seed):
                return np.random.default_rng(seed).random()
            """, entropy_roots=("run_unit",))
        assert result.ok

    def test_rpl002_requires_repr_on_held_state(self, tmp_path):
        result = lint_source(tmp_path, """\
            class Codec:
                def __init__(self, width):
                    self.width = width

            class Base:
                pass

            class Algo(Base):
                def __init__(self):
                    self._codec = Codec(8)
            """, identity_bases=("Base",))
        (finding,) = result.findings
        assert finding.code == "RPL002"
        assert "Codec" in finding.message

    def test_rpl002_accepts_dataclass_repr(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass
            class Codec:
                width: int = 8

            class Base:
                pass

            class Algo(Base):
                def __init__(self):
                    self._codec = Codec()
            """, identity_bases=("Base",))
        assert result.ok

    def test_rpl003_flags_lock_field(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class State:
                lock: threading.Lock = field(
                    default_factory=threading.Lock)
            """)
        (finding,) = result.findings
        assert finding.code == "RPL003"
        assert "Lock" in finding.message

    def test_rpl003_getstate_pair_exempts(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class State:
                lock: threading.Lock = field(
                    default_factory=threading.Lock)

                def __getstate__(self):
                    return {}

                def __setstate__(self, state):
                    self.lock = threading.Lock()
            """)
        assert result.ok

    def test_rpl003_lambda_factory_with_clean_body_ok(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass, field

            @dataclass
            class State:
                pairs: dict = field(default_factory=lambda: {"a": 1})
            """)
        assert result.ok

    def test_rpl003_audits_payload_init(self, tmp_path):
        result = lint_source(tmp_path, """\
            class Unit:
                def __init__(self, path):
                    self._fh = open(path, "rb")
            """, payload_roots=("Unit",))
        (finding,) = result.findings
        assert finding.code == "RPL003"
        assert "file handle" in finding.message

    def test_rpl004_flags_post_construction_mutation(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Box:
                value: int

                def __post_init__(self):
                    object.__setattr__(self, "value",
                                       int(self.value))

            def poke(box):
                object.__setattr__(box, "value", 0)
            """)
        (finding,) = result.findings
        assert finding.code == "RPL004"
        assert "poke" in finding.message

    def test_rpl005_flags_mixed_lock_discipline(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def merge(self, other):
                    self.count = self.count + other.count
            """, guard_modules=("*",))
        (finding,) = result.findings
        assert finding.code == "RPL005"
        assert "merge" in finding.message

    def test_rpl005_locked_suffix_helper_is_clean(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def bump_locked(self):
                    self.count += 1
            """, guard_modules=("*",))
        assert result.ok


# ----------------------------------------------------------------------
# Config filters and rendering
# ----------------------------------------------------------------------
class TestConfigAndOutput:
    SOURCE = """\
        import random

        def run_unit():
            return random.random() + unsafe()

        def unsafe():
            return hash("x")
        """

    def test_select_filters_rules(self, tmp_path):
        path = write_module(tmp_path, "fixture.py", self.SOURCE)
        config = LintConfig(entropy_roots=("run_unit",))
        all_findings = lint_paths([path], config).findings
        assert {f.code for f in all_findings} == {"RPL001"}
        filtered = lint_paths(
            [path], config.with_filters(ignore=("RPL001",)))
        assert filtered.ok

    def test_filtered_run_skips_unused_check(self, tmp_path):
        path = write_module(tmp_path, "fixture.py", """\
            # repro-lint: ignore[RPL004] -- would be unused
            X = 1
            """)
        config = LintConfig().with_filters(select=("RPL003",))
        assert lint_paths([path], config).ok

    def test_json_rendering_round_trips(self, tmp_path):
        path = write_module(tmp_path, "fixture.py", self.SOURCE)
        result = lint_paths([path],
                            LintConfig(entropy_roots=("run_unit",)))
        payload = json.loads(render_findings(result.findings, "json",
                                             result.checked_files))
        assert payload["summary"]["total"] == len(result.findings)
        assert payload["summary"]["by_code"]["RPL001"] == \
            len(result.findings)
        codes = {item["code"] for item in payload["findings"]}
        assert codes == {"RPL001"}

    def test_text_rendering_interleaves_chains(self, tmp_path):
        path = write_module(tmp_path, "fixture.py", self.SOURCE)
        result = lint_paths([path],
                            LintConfig(entropy_roots=("run_unit",)))
        text = render_findings(result.findings, "text",
                               result.checked_files)
        assert "reachable via" in text

    def test_rule_codes_cover_registry_and_meta(self):
        assert rule_codes() == {"RPL000", "RPL001", "RPL002",
                                "RPL003", "RPL004", "RPL005",
                                "RPL006"}
