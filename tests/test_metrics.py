"""Unit tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.core.metrics import (ErrorSummary, compression_fraction,
                                ratio_error, space_savings)


class TestCompressionFraction:
    def test_basic(self):
        assert compression_fraction(25, 100) == 0.25

    def test_zero_compressed_allowed(self):
        assert compression_fraction(0, 100) == 0.0

    def test_zero_uncompressed_rejected(self):
        with pytest.raises(EstimationError):
            compression_fraction(1, 0)

    def test_negative_compressed_rejected(self):
        with pytest.raises(EstimationError):
            compression_fraction(-1, 10)

    def test_space_savings(self):
        assert space_savings(0.25) == 0.75


class TestRatioError:
    def test_exact_estimate(self):
        assert ratio_error(0.5, 0.5) == 1.0

    def test_symmetric(self):
        assert ratio_error(0.2, 0.4) == ratio_error(0.4, 0.2) == 2.0

    def test_always_at_least_one(self):
        for truth, estimate in [(0.1, 0.9), (0.9, 0.1), (0.5, 0.500001)]:
            assert ratio_error(truth, estimate) >= 1.0

    def test_nonpositive_rejected(self):
        with pytest.raises(EstimationError):
            ratio_error(0.0, 0.5)
        with pytest.raises(EstimationError):
            ratio_error(0.5, -0.1)


class TestErrorSummary:
    def test_from_estimates(self):
        summary = ErrorSummary.from_estimates(0.5, [0.4, 0.5, 0.6])
        assert summary.trials == 3
        assert summary.mean == pytest.approx(0.5)
        assert summary.bias == pytest.approx(0.0)
        assert summary.true_value == 0.5
        assert summary.max_ratio_error == pytest.approx(1.25)

    def test_variance_and_rmse(self):
        data = np.array([0.4, 0.6])
        summary = ErrorSummary.from_estimates(0.5, data)
        assert summary.variance == pytest.approx(float(data.var(ddof=1)))
        assert summary.rmse == pytest.approx(0.1)

    def test_single_trial_std_zero(self):
        summary = ErrorSummary.from_estimates(0.5, [0.7])
        assert summary.std == 0.0
        assert summary.trials == 1

    def test_relative_bias(self):
        summary = ErrorSummary.from_estimates(0.5, [0.6, 0.6])
        assert summary.relative_bias == pytest.approx(0.2)

    def test_quantiles_ordered(self):
        rng = np.random.default_rng(0)
        data = 0.5 + 0.01 * rng.standard_normal(500)
        summary = ErrorSummary.from_estimates(0.5, data)
        assert summary.q05 <= summary.q50 <= summary.q95

    def test_mean_ratio_error_at_least_one(self):
        summary = ErrorSummary.from_estimates(0.5, [0.45, 0.55, 0.5])
        assert summary.mean_ratio_error >= 1.0

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            ErrorSummary.from_estimates(0.5, [])

    def test_nonpositive_truth_rejected(self):
        with pytest.raises(EstimationError):
            ErrorSummary.from_estimates(0.0, [0.5])

    def test_nonpositive_estimates_rejected(self):
        with pytest.raises(EstimationError):
            ErrorSummary.from_estimates(0.5, [0.5, 0.0])

    def test_describe_mentions_key_numbers(self):
        summary = ErrorSummary.from_estimates(0.5, [0.5, 0.5])
        text = summary.describe()
        assert "truth=0.5" in text
        assert "trials=2" in text
