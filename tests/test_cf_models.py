"""Unit tests for repro.core.cf_models."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.storage.page import records_per_page
from repro.storage.types import CharType, IntegerType
from repro.core.cf_models import (ColumnHistogram,
                                  expected_distinct_in_sample,
                                  global_dictionary_cf,
                                  layout_rows_per_page, ns_cf,
                                  paged_dictionary_cf, paged_rle_cf,
                                  pages_spanned)


@pytest.fixture
def char8() -> CharType:
    return CharType(8)


class TestColumnHistogram:
    def test_from_values(self, char8):
        histogram = ColumnHistogram.from_values(
            char8, ["a", "b", "a", "c", "a"])
        assert histogram.n == 5
        assert histogram.d == 3
        assert dict(zip(histogram.values, histogram.counts))["a"] == 3

    def test_from_counts_mapping(self, char8):
        histogram = ColumnHistogram.from_counts(char8, {"x": 2, "y": 5})
        assert histogram.n == 7
        assert histogram.d == 2

    def test_from_counts_pairs(self, char8):
        histogram = ColumnHistogram.from_counts(char8, [("x", 1), ("y", 2)])
        assert histogram.n == 3

    def test_empty_rejected(self, char8):
        with pytest.raises(EstimationError):
            ColumnHistogram.from_values(char8, [])
        with pytest.raises(EstimationError):
            ColumnHistogram(char8, [], [])

    def test_duplicates_rejected(self, char8):
        with pytest.raises(EstimationError):
            ColumnHistogram(char8, ["a", "a"], [1, 2])

    def test_nonpositive_counts_rejected(self, char8):
        with pytest.raises(EstimationError):
            ColumnHistogram(char8, ["a"], [0])

    def test_invalid_value_rejected(self, char8):
        with pytest.raises(Exception):
            ColumnHistogram(char8, ["way too long for char8"], [1])

    def test_with_counts_drops_zeros(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b", "c"], [5, 5, 5])
        sample = histogram.with_counts([2, 0, 1])
        assert sample.values == ("a", "c")
        assert sample.n == 3

    def test_with_counts_wrong_length(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [1])
        with pytest.raises(EstimationError):
            histogram.with_counts([1, 2])

    def test_with_counts_all_zero_rejected(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [1])
        with pytest.raises(EstimationError):
            histogram.with_counts([0])

    def test_frequency_of_frequencies(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b", "c", "d"],
                                    [1, 1, 2, 5])
        assert histogram.frequency_of_frequencies() == {1: 2, 2: 1, 5: 1}

    def test_total_bytes_char(self, char8):
        histogram = ColumnHistogram(char8, ["a", "bb"], [3, 2])
        assert histogram.total_bytes == 5 * 8

    def test_ns_stored_sizes(self, char8):
        histogram = ColumnHistogram(char8, ["a", "bbb"], [1, 1])
        assert histogram.ns_stored_sizes().tolist() == [2, 4]

    def test_sorted_by_value(self, char8):
        histogram = ColumnHistogram(char8, ["c", "a", "b"], [1, 2, 3])
        ordered = histogram.sorted_by_value()
        assert ordered.values == ("a", "b", "c")
        assert ordered.counts.tolist() == [2, 3, 1]

    def test_sorted_cached(self, char8):
        histogram = ColumnHistogram(char8, ["b", "a"], [1, 1])
        assert histogram.sorted_by_value() is histogram.sorted_by_value()

    def test_expand_sorted(self, char8):
        histogram = ColumnHistogram(char8, ["b", "a"], [2, 1])
        assert histogram.expand("sorted") == ["a", "b", "b"]

    def test_expand_shuffled_same_multiset(self, char8):
        histogram = ColumnHistogram(char8, ["b", "a"], [2, 3])
        shuffled = histogram.expand("shuffled", seed=1)
        assert sorted(shuffled) == ["a", "a", "a", "b", "b"]

    def test_expand_bad_order(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [1])
        with pytest.raises(EstimationError):
            histogram.expand("sideways")

    def test_integer_histogram(self):
        histogram = ColumnHistogram(IntegerType(), [5, -1, 300], [1, 2, 3])
        assert histogram.total_bytes == 6 * 4
        ordered = histogram.sorted_by_value()
        assert ordered.values == (-1, 5, 300)


class TestNsCF:
    def test_formula(self, char8):
        histogram = ColumnHistogram(char8, ["a", "bbb"], [3, 1])
        expected = (3 * (1 + 1) + 1 * (3 + 1)) / (4 * 8)
        assert ns_cf(histogram) == pytest.approx(expected)

    def test_full_width_values_give_cf_above_one_numerator(self, char8):
        histogram = ColumnHistogram(char8, ["x" * 8], [10])
        # Full-width values plus length header: CF slightly above 1.
        assert ns_cf(histogram) == pytest.approx(9 / 8)


class TestGlobalDictionaryCF:
    def test_paper_formula(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b"], [50, 50])
        assert global_dictionary_cf(histogram, pointer_bytes=2) == \
            pytest.approx(2 / 100 + 2 / 8)

    def test_derived_pointer(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b"], [50, 50])
        assert global_dictionary_cf(histogram, pointer_bytes=None) == \
            pytest.approx(2 / 100 + 1 / 8)

    def test_ns_entries(self, char8):
        histogram = ColumnHistogram(char8, ["a", "bb"], [1, 1])
        value = global_dictionary_cf(histogram, pointer_bytes=2,
                                     entry_storage="null_suppressed")
        assert value == pytest.approx(((2 + 3) + 2 * 2) / 16)


class TestPagedModels:
    def test_pages_spanned_basic(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b"], [10, 10])
        spans = pages_spanned(histogram, rows_per_page=10)
        assert spans.tolist() == [1, 1]

    def test_pages_spanned_straddling(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b"], [15, 5])
        spans = pages_spanned(histogram, rows_per_page=10)
        assert spans.tolist() == [2, 1]

    def test_pages_spanned_heavy_value(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [95])
        assert pages_spanned(histogram, 10).tolist() == [10]

    def test_pages_spanned_bad_rows(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [5])
        with pytest.raises(EstimationError):
            pages_spanned(histogram, 0)

    def test_layout_rows_per_page_default_record(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [5])
        assert layout_rows_per_page(histogram, page_size=256) == \
            records_per_page(256, 8)

    def test_layout_rows_per_page_override(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [5])
        assert layout_rows_per_page(histogram, page_size=256,
                                    record_bytes=16) == \
            records_per_page(256, 16)

    def test_paged_dictionary_cf_exceeds_global(self, char8):
        values = [f"v{i}" for i in range(20)]
        histogram = ColumnHistogram(char8, values, [50] * 20)
        paged = paged_dictionary_cf(histogram, page_size=256)
        simple = global_dictionary_cf(histogram)
        assert paged >= simple  # paging stores entries once per page

    def test_paged_dictionary_requires_fixed_pointer(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [5])
        with pytest.raises(EstimationError):
            paged_dictionary_cf(histogram, pointer_bytes=None)

    def test_paged_rle_cf(self, char8):
        histogram = ColumnHistogram(char8, ["aa", "bb"], [100, 100])
        value = paged_rle_cf(histogram, page_size=256)
        rows = records_per_page(256, 8)
        spans = pages_spanned(histogram, rows)
        expected = (int(spans.sum()) * (4 + 1 + 2)) / (200 * 8)
        assert value == pytest.approx(expected)


class TestExpectedDistinct:
    def test_full_sample_sees_everything(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b", "c"], [5, 5, 5])
        expected = expected_distinct_in_sample(histogram, 10**6)
        assert expected == pytest.approx(3.0, abs=1e-6)

    def test_small_sample_sees_less(self, char8):
        histogram = ColumnHistogram(char8, [f"v{i}" for i in range(100)],
                                    [1] * 100)
        expected = expected_distinct_in_sample(histogram, 10)
        assert 9 < expected < 11  # ~r draws over n=100 singletons

    def test_without_replacement(self, char8):
        histogram = ColumnHistogram(char8, ["a", "b"], [50, 50])
        expected = expected_distinct_in_sample(histogram, 100,
                                               with_replacement=False)
        assert expected == pytest.approx(2.0, abs=1e-9)

    def test_without_replacement_oversample_rejected(self, char8):
        histogram = ColumnHistogram(char8, ["a"], [5])
        with pytest.raises(EstimationError):
            expected_distinct_in_sample(histogram, 6,
                                        with_replacement=False)

    def test_monte_carlo_agreement(self, char8):
        from repro.sampling.row_samplers import WithReplacementSampler
        from repro.sampling.rng import make_rng

        values = [f"v{i}" for i in range(50)]
        counts = np.arange(1, 51)
        histogram = ColumnHistogram(char8, values, counts)
        analytic = expected_distinct_in_sample(histogram, 100)
        sampler = WithReplacementSampler()
        rng = make_rng(5)
        observed = np.mean([
            sampler.sample_histogram(histogram, 100, rng).d
            for _ in range(300)])
        assert observed == pytest.approx(analytic, rel=0.05)
