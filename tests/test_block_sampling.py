"""Unit tests for repro.sampling.block."""

import pytest

from repro.errors import SamplingError
from repro.sampling.block import BlockSampler
from repro.sampling.rng import make_rng
from repro.storage.page import Page


def make_pages(num_pages: int, rows_per_page: int) -> list[Page]:
    pages = []
    for page_id in range(num_pages):
        page = Page(256, page_id=page_id)
        for slot in range(rows_per_page):
            page.insert(f"p{page_id}r{slot}".encode().ljust(10))
        pages.append(page)
    return pages


class TestBlockSampler:
    def test_whole_pages_kept(self):
        pages = make_pages(10, 8)
        sample = BlockSampler().sample_records(pages, 20, make_rng(0))
        assert sample.rows % 8 == 0
        assert sample.rows >= 20
        assert len(sample.page_ids) == sample.rows // 8

    def test_rids_match_records(self):
        pages = make_pages(5, 4)
        sample = BlockSampler().sample_records(pages, 6, make_rng(1))
        for rid, record in zip(sample.rids, sample.records):
            assert record.startswith(f"p{rid.page_id}r{rid.slot}".encode())

    def test_pages_distinct(self):
        pages = make_pages(10, 5)
        sample = BlockSampler().sample_records(pages, 50, make_rng(2))
        assert len(set(sample.page_ids)) == len(sample.page_ids)

    def test_requesting_everything_returns_everything(self):
        pages = make_pages(4, 3)
        sample = BlockSampler().sample_records(pages, 12, make_rng(0))
        assert sample.rows == 12
        assert sample.pages_available == 4

    def test_requesting_more_than_available_returns_all(self):
        pages = make_pages(3, 2)
        sample = BlockSampler().sample_records(pages, 100, make_rng(0))
        assert sample.rows == 6

    def test_no_pages_rejected(self):
        with pytest.raises(SamplingError):
            BlockSampler().sample_records([], 5, make_rng(0))

    def test_bad_target_rejected(self):
        with pytest.raises(SamplingError):
            BlockSampler().sample_records(make_pages(2, 2), 0, make_rng(0))

    def test_sample_fraction(self):
        pages = make_pages(10, 10)
        sample = BlockSampler().sample_fraction(pages, 0.25, 100,
                                                make_rng(3))
        assert sample.rows >= 25

    def test_sample_fraction_validation(self):
        with pytest.raises(SamplingError):
            BlockSampler().sample_fraction(make_pages(2, 2), 0.0, 4,
                                           make_rng(0))

    def test_different_seeds_pick_different_pages(self):
        pages = make_pages(20, 2)
        first = BlockSampler().sample_records(pages, 4, make_rng(0))
        second = BlockSampler().sample_records(pages, 4, make_rng(1))
        assert first.page_ids != second.page_ids
