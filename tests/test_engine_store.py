"""Integration tests: the engine's two-tier (memory + disk) caching."""

import pytest

from repro.errors import AdvisorError, EstimationError, ExperimentError
from repro.advisor.cost import Query
from repro.advisor.selection import advise_from_data
from repro.core.samplecf import true_cf_histogram
from repro.experiments.runner import engine_sweep, run_request_trials
from repro.workloads.generators import make_histogram, make_table
from repro.engine import (EstimationEngine, EstimationRequest,
                          EngineStats, SampleCache)
from repro.engine.samples import (DEFAULT_SAMPLE_CACHE_SIZE,
                                  SAMPLE_CACHE_SIZE_ENV,
                                  resolve_sample_cache_size)
from repro.store import SampleStore


@pytest.fixture
def store(tmp_path) -> SampleStore:
    return SampleStore(tmp_path / "store")


def _table():
    return make_table(n=3000, d=50, k=20, page_size=1024, seed=7)


def _requests(algorithms=("null_suppression", "rle"), trials=2):
    table = _table()
    return [EstimationRequest(table=table, columns=("a",), algorithm=a,
                              fraction=0.02, trials=trials,
                              page_size=table.page_size)
            for a in algorithms]


def _values(batch):
    return [e.estimate for r in batch.results for e in r.estimates]


class TestWarmStart:
    def test_second_run_materializes_nothing(self, store):
        cold = EstimationEngine(seed=11, store=store).execute(_requests())
        warm = EstimationEngine(seed=11, store=store).execute(_requests())
        assert cold.stats["samples_materialized"] > 0
        assert cold.stats["sample_store_writes"] == \
            cold.stats["samples_materialized"]
        assert cold.stats["estimate_store_writes"] == \
            cold.stats["estimates_computed"]
        assert warm.stats["samples_materialized"] == 0
        assert warm.stats["estimates_computed"] == 0
        assert warm.stats["estimate_store_hits"] == warm.stats["trials"]

    def test_warm_estimates_bit_identical(self, store):
        cold = EstimationEngine(seed=11, store=store).execute(_requests())
        warm = EstimationEngine(seed=11, store=store).execute(_requests())
        bare = EstimationEngine(seed=11).execute(_requests())
        assert _values(cold) == _values(warm) == _values(bare)

    def test_new_algorithm_hits_sample_tier(self, store):
        EstimationEngine(seed=11, store=store).execute(_requests())
        batch = EstimationEngine(seed=11, store=store).execute(
            _requests(algorithms=("dictionary",)))
        assert batch.stats["samples_materialized"] == 0
        assert batch.stats["sample_store_hits"] > 0
        assert batch.stats["estimates_computed"] == \
            batch.stats["trials"]

    def test_histogram_requests_warm_start(self, store):
        def batch():
            histogram = make_histogram(5000, 40, 16, seed=9)
            return [EstimationRequest(histogram=histogram, fraction=0.05,
                                      trials=3)]

        cold = EstimationEngine(seed=4, store=store).execute(batch())
        warm = EstimationEngine(seed=4, store=store).execute(batch())
        assert warm.stats["samples_materialized"] == 0
        assert warm.stats["estimate_store_hits"] == 3
        assert _values(cold) == _values(warm)

    def test_table_mutation_invalidates(self, store):
        table = _table()
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.02,
                                    page_size=table.page_size)
        EstimationEngine(seed=11, store=store).execute([request])
        table.insert(("zzzz new row",))
        batch = EstimationEngine(seed=11, store=store).execute([request])
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["estimate_store_hits"] == 0

    def test_memory_tier_checked_before_disk(self, store):
        # One table *object* across batches: the identity-keyed memory
        # LRU serves it, and disk is never consulted.
        table = _table()

        def request(algorithm):
            return EstimationRequest(table=table, columns=("a",),
                                     algorithm=algorithm, fraction=0.02,
                                     trials=2,
                                     page_size=table.page_size)

        engine = EstimationEngine(seed=11, store=store)
        engine.execute([request("null_suppression")])
        batch = engine.execute([request("dictionary")])
        assert batch.stats["sample_cache_hits"] == batch.stats["trials"]
        assert batch.stats["sample_store_hits"] == 0

    def test_opaque_seeds_bypass_store(self, store):
        import numpy as np

        table = _table()
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.02,
                                    seed=np.random.default_rng(3),
                                    page_size=table.page_size)
        batch = EstimationEngine(seed=11, store=store).execute([request])
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["sample_store_writes"] == 0
        assert batch.stats["estimate_store_writes"] == 0

    def test_failing_store_degrades_to_miss(self, store, monkeypatch):
        """A broken disk tier (ENOSPC, permissions) never kills a batch."""
        from repro.errors import StoreError

        def boom(*args, **kwargs):
            raise StoreError("disk full")

        monkeypatch.setattr(store, "get_or_create_sample", boom)
        monkeypatch.setattr(store, "get_estimate", boom)
        monkeypatch.setattr(store, "put_estimate", boom)
        degraded = EstimationEngine(seed=11, store=store).execute(
            _requests(algorithms=("null_suppression",)))
        bare = EstimationEngine(seed=11).execute(
            _requests(algorithms=("null_suppression",)))
        assert _values(degraded) == _values(bare)
        assert degraded.stats["samples_materialized"] == \
            degraded.stats["trials"]
        assert degraded.stats["sample_store_writes"] == 0
        assert degraded.stats["estimate_store_writes"] == 0

    def test_store_accepts_directory_path(self, tmp_path):
        engine = EstimationEngine(seed=1, store=tmp_path / "by-path")
        assert isinstance(engine.store, SampleStore)
        engine.execute(_requests(algorithms=("null_suppression",),
                                 trials=1))
        assert len(engine.store) > 0


class TestProcessPoolSharing:
    def test_workers_share_the_store(self, store):
        cold = EstimationEngine(seed=11, store=store,
                                executor="process").execute(_requests())
        warm = EstimationEngine(seed=11, store=store,
                                executor="process").execute(_requests())
        assert warm.stats["samples_materialized"] == 0
        assert _values(cold) == _values(warm)

    def test_process_warm_serves_serial_and_back(self, store):
        serial = EstimationEngine(seed=11, store=store).execute(
            _requests())
        pooled = EstimationEngine(seed=11, store=store,
                                  executor="process").execute(_requests())
        assert pooled.stats["samples_materialized"] == 0
        assert _values(serial) == _values(pooled)


class TestCacheConfiguration:
    def test_engine_kwarg_sets_capacity(self):
        engine = EstimationEngine(seed=1, sample_cache_size=3)
        assert engine.cache.capacity == 3

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_CACHE_SIZE_ENV, "17")
        assert EstimationEngine(seed=1).cache.capacity == 17
        # explicit kwarg still wins
        assert EstimationEngine(seed=1,
                                sample_cache_size=5).cache.capacity == 5

    def test_env_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(SAMPLE_CACHE_SIZE_ENV, raising=False)
        assert resolve_sample_cache_size() == DEFAULT_SAMPLE_CACHE_SIZE
        assert SampleCache().capacity == DEFAULT_SAMPLE_CACHE_SIZE

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_CACHE_SIZE_ENV, "lots")
        with pytest.raises(EstimationError):
            EstimationEngine(seed=1)

    def test_as_dict_exposes_cache_gauges(self):
        engine = EstimationEngine(seed=1, sample_cache_size=9)
        engine.execute(_requests(algorithms=("null_suppression",),
                                 trials=1))
        gauges = engine.stats.as_dict()["gauges"]
        assert gauges["sample_cache_capacity"] == 9
        assert gauges["sample_cache_size"] == 1
        # a cache-less stats bag reports no cache gauges
        assert "sample_cache_size" not in EngineStats().as_dict()["gauges"]


class TestStackIntegration:
    def _workload(self):
        tables = {"t": _table()}
        queries = [Query("q1", "t", ("a",), weight=1.0)]
        return tables, queries

    def test_advisor_warm_starts(self, store):
        tables, queries = self._workload()
        bound = 10 * tables["t"].num_rows * 30
        first = advise_from_data(tables, queries, bound, seed=5,
                                 store=store)
        cold_counters = dict(store.counters)
        tables2, queries2 = self._workload()
        second = advise_from_data(tables2, queries2, bound, seed=5,
                                  store=store)
        assert [c.size_bytes for c in first.chosen] == \
            [c.size_bytes for c in second.chosen]
        assert store.counters["estimate_hits"] > \
            cold_counters["estimate_hits"]

    def test_advisor_rejects_engine_plus_store(self, store):
        tables, queries = self._workload()
        with pytest.raises(AdvisorError):
            advise_from_data(tables, queries, 10_000,
                             engine=EstimationEngine(seed=1),
                             store=store)

    def test_engine_sweep_warm_starts(self, store):
        def run():
            histogram = make_histogram(5000, 40, 16, seed=9)
            truth = true_cf_histogram(histogram, "null_suppression")

            def make(fraction):
                return truth, EstimationRequest(
                    histogram=histogram, fraction=fraction), {}

            return engine_sweep([0.02, 0.05], make, trials=3, seed=2,
                                store=store)

        cold = run()
        warm = run()
        assert [p.summary.mean for p in cold] == \
            [p.summary.mean for p in warm]
        assert store.counters["estimate_hits"] >= 6

    def test_run_request_trials_accepts_store(self, store):
        table = _table()
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.02,
                                    page_size=table.page_size)
        first = run_request_trials(request, trials=2, seed=3,
                                   store=store)
        second = run_request_trials(request, trials=2, seed=3,
                                    store=store)
        assert list(first) == list(second)
        with pytest.raises(ExperimentError):
            run_request_trials(request, trials=2,
                               engine=EstimationEngine(seed=1),
                               store=store)
