"""Unit tests for repro.storage.record."""

import pytest

from repro.errors import EncodingError
from repro.storage.record import (decode_record, encode_record, record_key,
                                  split_record)
from repro.storage.schema import Column, Schema


def fixed_schema() -> Schema:
    return Schema([Column.of("name", "char(10)"),
                   Column.of("qty", "integer"),
                   Column.of("big", "bigint")])


def mixed_schema() -> Schema:
    return Schema([Column.of("name", "char(6)"),
                   Column.of("note", "varchar(40)"),
                   Column.of("qty", "integer")])


class TestFixedRecords:
    def test_roundtrip(self):
        schema = fixed_schema()
        row = ("widget", 42, -7)
        assert decode_record(schema, encode_record(schema, row)) == row

    def test_width(self):
        schema = fixed_schema()
        assert len(encode_record(schema, ("w", 1, 2))) == 10 + 4 + 8

    def test_truncated_rejected(self):
        schema = fixed_schema()
        record = encode_record(schema, ("w", 1, 2))
        with pytest.raises(EncodingError):
            decode_record(schema, record[:-1])

    def test_trailing_bytes_rejected(self):
        schema = fixed_schema()
        record = encode_record(schema, ("w", 1, 2))
        with pytest.raises(EncodingError):
            decode_record(schema, record + b"x")

    def test_split_matches_columns(self):
        schema = fixed_schema()
        row = ("widget", 42, -7)
        slices = split_record(schema, encode_record(schema, row))
        assert len(slices) == 3
        assert slices[0] == schema[0].dtype.encode("widget")
        assert slices[1] == schema[1].dtype.encode(42)
        assert slices[2] == schema[2].dtype.encode(-7)


class TestMixedRecords:
    def test_roundtrip(self):
        schema = mixed_schema()
        row = ("abc", "a variable note", 9)
        assert decode_record(schema, encode_record(schema, row)) == row

    def test_empty_varchar(self):
        schema = mixed_schema()
        row = ("abc", "", 9)
        assert decode_record(schema, encode_record(schema, row)) == row

    def test_split_sizes(self):
        schema = mixed_schema()
        row = ("abc", "hello", 9)
        slices = split_record(schema, encode_record(schema, row))
        assert [len(s) for s in slices] == [6, 2 + 5, 4]

    def test_truncated_varchar_rejected(self):
        schema = mixed_schema()
        record = encode_record(schema, ("abc", "hello", 9))
        with pytest.raises(EncodingError):
            decode_record(schema, record[:8])

    def test_split_trailing_bytes_rejected(self):
        schema = mixed_schema()
        record = encode_record(schema, ("abc", "hello", 9))
        with pytest.raises(EncodingError):
            split_record(schema, record + b"zz")


class TestRecordKey:
    def test_extracts_positions(self):
        schema = fixed_schema()
        record = encode_record(schema, ("widget", 42, -7))
        assert record_key(schema, record, [1]) == (42,)
        assert record_key(schema, record, [2, 0]) == (-7, "widget")
