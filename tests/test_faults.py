"""Unit tests for ``repro.faults``: plans, policies, and engine wiring.

The chaos *property* suite (``tests/property/test_chaos.py``) owns the
global invariant; this module pins the building blocks — fault-plan
data model, deterministic retry jitter, deadline arithmetic, the
circuit-breaker state machine — and the engine-level integration
seams (``execute(deadline=...)``, transient-vs-permanent store retry
classes, pool-worker crash recovery, the CLI flags).
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.cli import main
from repro.errors import (EstimationError, InjectedFault,
                          PermanentStoreError, ReproError, StoreError,
                          TransientStoreError)
from repro.engine import (EstimationEngine, EstimationRequest,
                          PartialBatchResult, ProcessPoolPlanExecutor)
from repro.faults import (DEFAULT_RETRY_POLICY, FAULT_PLAN_ENV,
                          FAULT_SITES, CircuitBreaker, Deadline,
                          FaultInjector, FaultPlan, FaultSpec,
                          NULL_INJECTOR, RetryPolicy, injector_from_env,
                          plan_from_env)
from repro.store.store import SampleStore
from repro.workloads.generators import make_table


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(EstimationError, match="unknown fault site"):
            FaultSpec(site="store.nope", kind="error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(EstimationError, match="does not honour"):
            FaultSpec(site="store.read", kind="crash")

    def test_bad_window_rejected(self):
        with pytest.raises(EstimationError, match="fault window"):
            FaultSpec(site="store.read", kind="error", at=-1)
        with pytest.raises(EstimationError, match="fault window"):
            FaultSpec(site="store.read", kind="error", count=0)

    def test_matches_window(self):
        spec = FaultSpec(site="store.read", kind="error", at=2, count=3)
        assert [spec.matches(i) for i in range(7)] == [
            False, False, True, True, True, False, False]

    def test_every_registered_site_has_kinds(self):
        for site, kinds in FAULT_SITES.items():
            assert kinds, site
            for kind in kinds:
                FaultSpec(site=site, kind=kind)  # all constructible


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="store.read", kind="corrupt", at=1, arg=40.0),
            FaultSpec(site="remote.send", kind="delay", arg=0.01),
        ), seed=99)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fingerprint_is_content_identity(self):
        one = FaultPlan(faults=(FaultSpec(site="store.lock",
                                          kind="error"),))
        same = FaultPlan.from_json(one.to_json())
        other = FaultPlan(faults=(FaultSpec(site="store.lock",
                                            kind="error", at=1),))
        assert one.fingerprint == same.fingerprint
        assert one.fingerprint != other.fingerprint

    def test_from_json_rejects_garbage(self):
        with pytest.raises(EstimationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(EstimationError, match="'faults' list"):
            FaultPlan.from_json('{"seed": 3}')

    def test_generate_is_seed_deterministic(self):
        assert FaultPlan.generate(7) == FaultPlan.generate(7)
        assert FaultPlan.generate(7) != FaultPlan.generate(8)
        assert FaultPlan.generate(7, n_faults=5).faults != \
            FaultPlan.generate(7, n_faults=3).faults

    def test_generate_respects_site_subset(self):
        plan = FaultPlan.generate(3, n_faults=8,
                                  sites=("store.read", "store.lock"))
        assert {spec.site for spec in plan.faults} <= {
            "store.read", "store.lock"}

    def test_generate_rejects_negative_count(self):
        with pytest.raises(EstimationError, match="non-negative"):
            FaultPlan.generate(1, n_faults=-1)


class TestFaultInjector:
    def test_fires_only_inside_window(self):
        injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=1, count=2),)))
        fired = [injector.fire("store.read") for _ in range(4)]
        assert [spec is not None for spec in fired] == [
            False, True, True, False]
        assert injector.fired_count() == 2
        assert [f.invocation for f in injector.fired] == [1, 2]

    def test_sites_count_independently(self):
        injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0),)))
        assert injector.fire("store.write") is None
        assert injector.fire("store.read") is not None

    def test_reset_restarts_the_schedule(self):
        injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0),)))
        assert injector.fire("store.read") is not None
        assert injector.fire("store.read") is None
        injector.reset()
        assert injector.fire("store.read") is not None

    def test_pickle_ships_plan_not_counters(self):
        injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0),)))
        assert injector.fire("store.read") is not None
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan == injector.plan
        # A fresh process restarts the invocation count: the at=0
        # fault fires again even though the parent already spent it.
        assert clone.fire("store.read") is not None

    def test_null_injector_is_disabled_and_inert(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.fire("store.read") is None
        assert NULL_INJECTOR.fired_count() == 0


class TestEnvHook:
    def test_unset_env_means_null(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert plan_from_env() is None
        assert injector_from_env() is NULL_INJECTOR

    def test_inline_json_plan(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(site="pool.unit",
                                           kind="crash", at=2),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert plan_from_env() == plan
        assert injector_from_env().plan == plan

    def test_plan_file_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(site="store.read",
                                           kind="truncate", arg=3.0),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert plan_from_env() == plan

    def test_unreadable_path_is_loud(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "absent.json"))
        with pytest.raises(EstimationError, match="unreadable"):
            plan_from_env()


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=5)
        one = [policy.delay_for(123, a) for a in range(1, 5)]
        two = [policy.delay_for(123, a) for a in range(1, 5)]
        assert one == two
        assert one != [policy.delay_for(124, a) for a in range(1, 5)]

    def test_delays_stay_inside_bounds(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.001,
                             max_delay=0.02)
        for seed in (0, 7, 991):
            for attempt in range(1, 9):
                delay = policy.delay_for(seed, attempt)
                assert 0.001 <= delay <= 0.02

    def test_validation(self):
        with pytest.raises(EstimationError, match="attempt budget"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(EstimationError, match="base_delay"):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(EstimationError, match="1-based"):
            RetryPolicy().delay_for(1, 0)

    def test_default_policy_is_modest(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.max_delay <= 0.5


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(EstimationError, match="non-negative"):
            Deadline.after(-1.0)

    def test_fresh_budget_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 60.0

    def test_zero_budget_expires_immediately(self):
        assert Deadline.after(0.0).expired

    def test_clamp_caps_to_remaining(self):
        deadline = Deadline.after(0.5)
        assert deadline.clamp(100.0) <= 0.5
        assert Deadline.after(0.0).clamp(100.0) == pytest.approx(0.001)


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow()  # the probe (cooldown 0)
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()  # cooldown skip
        assert breaker.allow()      # the probe
        breaker.record_failure()    # probe failed: open again
        assert breaker.state == "open"
        assert not breaker.allow()  # a fresh cooldown applies

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(EstimationError, match="failure threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(EstimationError, match="cooldown"):
            CircuitBreaker(cooldown=-1)


class TestErrorTaxonomy:
    def test_store_error_split(self):
        assert issubclass(TransientStoreError, StoreError)
        assert issubclass(PermanentStoreError, StoreError)
        assert not issubclass(TransientStoreError, PermanentStoreError)

    def test_injected_fault_is_not_a_store_error(self):
        # Degradation paths catch StoreError; a simulated process
        # death must never be absorbed by them.
        assert issubclass(InjectedFault, ReproError)
        assert not issubclass(InjectedFault, StoreError)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def _requests():
    table = make_table(n=1500, d=40, k=15, distribution="zipf",
                       order="shuffled", page_size=1024, seed=7)
    return [EstimationRequest(table=table, columns=("a",),
                              algorithm=algorithm, fraction=0.05,
                              trials=2, page_size=512)
            for algorithm in ("null_suppression", "rle")]


def _values(batch):
    return [None if result is None
            else tuple(float(v) for v in result.values)
            for result in batch.results]


@pytest.fixture(scope="module")
def clean_values():
    return _values(EstimationEngine(seed=42).execute(_requests()))


class TestEngineDeadline:
    def test_zero_deadline_skips_everything_typed(self):
        batch = EstimationEngine(seed=42).execute(_requests(),
                                                  deadline=0.0)
        assert isinstance(batch, PartialBatchResult)
        assert not batch.complete
        assert batch.counts()["deadline_exceeded"] == len(batch.outcomes)
        assert all(result is None for result in batch.results)
        assert batch.stats["deadline_skipped_units"] == \
            len(batch.outcomes)

    def test_ample_deadline_is_bit_identical(self, clean_values):
        batch = EstimationEngine(seed=42).execute(_requests(),
                                                  deadline=300.0)
        assert isinstance(batch, PartialBatchResult)
        assert batch.complete
        assert batch.counts()["done"] == len(batch.outcomes)
        assert _values(batch) == clean_values

    def test_accounting_is_exactly_once(self):
        requests = _requests()
        batch = EstimationEngine(seed=42).execute(requests, deadline=0.0)
        submitted = sum(request.trials for request in requests)
        assert len(batch.outcomes) == submitted
        assert len({(o.index, o.trial) for o in batch.outcomes}) == \
            submitted

    def test_deadline_instance_accepted(self, clean_values):
        batch = EstimationEngine(seed=42).execute(
            _requests(), deadline=Deadline.after(300.0))
        assert _values(batch) == clean_values


def _warm_store(tmp_path):
    store = SampleStore(tmp_path / "store")
    EstimationEngine(seed=42, store=store).execute(_requests())
    return store


class TestStoreRetryIntegration:
    def test_transient_fault_heals_by_retry(self, tmp_path,
                                            clean_values):
        store = _warm_store(tmp_path)
        store.injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0, count=2),)))
        batch = EstimationEngine(seed=42, store=store).execute(
            _requests(), deadline=300.0)
        assert _values(batch) == clean_values
        assert batch.stats["retry_attempts"] >= 2
        assert batch.stats["retry_giveups"] == 0
        assert batch.counts()["done"] == len(batch.outcomes)
        assert store.counters["faults_injected"] == 2

    def test_exhausted_retries_degrade_and_account(self, tmp_path,
                                                   clean_values):
        store = _warm_store(tmp_path)
        store.injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0,
                      count=500),)))
        batch = EstimationEngine(seed=42, store=store).execute(
            _requests(), deadline=300.0)
        assert _values(batch) == clean_values  # never a wrong number
        assert batch.stats["retry_giveups"] >= 1
        assert batch.stats["store_degraded_reads"] >= 1
        assert batch.counts()["degraded"] >= 1
        assert batch.counts()["deadline_exceeded"] == 0

    def test_permanent_fault_degrades_without_retry(self, tmp_path,
                                                    clean_values):
        store = _warm_store(tmp_path)
        store.injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.write", kind="error_permanent",
                      at=0, count=500),)))
        # Invalidate the estimate tier so the batch re-writes.
        for entry in list(store.entries()):
            if entry.kind == "estimates":
                entry.path.unlink()
        batch = EstimationEngine(seed=42, store=store).execute(
            _requests(), deadline=300.0)
        assert _values(batch) == clean_values
        assert batch.stats["retry_attempts"] == 0  # no retry burned
        assert batch.stats["store_degraded_writes"] >= 1

    def test_corrupt_read_quarantines_and_rematerializes(
            self, tmp_path, clean_values):
        store = _warm_store(tmp_path)
        store.injector = FaultInjector(FaultPlan(faults=(
            FaultSpec(site="store.read", kind="corrupt", at=0,
                      count=3, arg=64.0),)))
        batch = EstimationEngine(seed=42, store=store).execute(
            _requests())
        assert _values(batch) == clean_values
        assert store.counters["quarantined"] >= 1


class TestPoolWorkerCrash:
    def test_worker_death_reruns_in_parent_bit_identical(
            self, monkeypatch, clean_values):
        plan = FaultPlan(faults=(
            FaultSpec(site="pool.unit", kind="crash", at=0, count=1),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        engine = EstimationEngine(seed=42,
                                  executor=ProcessPoolPlanExecutor(2),
                                  injector=NULL_INJECTOR)
        batch = engine.execute(_requests(), deadline=300.0)
        assert _values(batch) == clean_values
        assert batch.stats["pool_worker_deaths"] >= 1
        assert batch.stats["pool_degraded_units"] >= 1
        assert batch.counts()["degraded"] >= 1
        assert batch.counts()["deadline_exceeded"] == 0


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def _run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


CLI_SPEC = {
    "seed": 7,
    "workloads": {"w": {"n": 3000, "d": 30, "k": 16}},
    "requests": [
        {"workload": "w", "algorithm": "null_suppression",
         "fraction": 0.02, "trials": 2},
        {"workload": "w", "algorithm": "rle", "fraction": 0.02,
         "trials": 2},
    ],
}


class TestCLIFlags:
    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CLI_SPEC), encoding="utf-8")
        return str(path)

    def test_zero_deadline_reports_typed_outcomes(self, capsys,
                                                  spec_path):
        code, out, _err = _run_cli(capsys, "estimate-batch", spec_path,
                                   "--deadline", "0")
        assert code == 0
        payload = json.loads(out)
        assert payload["deadline"] == 0.0
        assert payload["complete"] is False
        assert payload["outcome_counts"]["deadline_exceeded"] == \
            len(payload["outcomes"])
        for entry in payload["results"]:
            assert entry["deadline_exceeded"] is True
            assert entry["mean"] is None

    def test_ample_deadline_matches_unbounded_run(self, capsys,
                                                  spec_path):
        code, clean_out, _ = _run_cli(capsys, "estimate-batch",
                                      spec_path)
        assert code == 0
        code, bounded_out, _ = _run_cli(capsys, "estimate-batch",
                                        spec_path, "--deadline", "300",
                                        "--max-retries", "2")
        assert code == 0
        clean = json.loads(clean_out)
        bounded = json.loads(bounded_out)
        assert bounded["complete"] is True
        assert bounded["results"] == clean["results"]

    def test_chaos_env_plan_keeps_results_bit_identical(
            self, capsys, spec_path, monkeypatch, tmp_path):
        """The CI chaos-smoke contract, as a test: same JSON results."""
        store_dir = str(tmp_path / "store")
        code, clean_out, _ = _run_cli(capsys, "estimate-batch",
                                      spec_path, "--store-dir",
                                      store_dir)
        assert code == 0
        plan = FaultPlan(faults=(
            FaultSpec(site="store.read", kind="error", at=0, count=2),
            FaultSpec(site="store.read", kind="corrupt", at=3,
                      arg=80.0),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        code, chaos_out, _ = _run_cli(capsys, "estimate-batch",
                                      spec_path, "--store-dir",
                                      store_dir)
        assert code == 0
        assert json.loads(chaos_out)["results"] == \
            json.loads(clean_out)["results"]
