"""Unit tests for repro.experiments (runner, report, registry)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (EXPERIMENTS, get_experiment,
                                        list_experiments)
from repro.experiments.report import (banner, fmt_bytes, fmt_float,
                                      format_markdown_table, format_table)
from repro.experiments.runner import (run_trials, summarize_trials, sweep,
                                      timed)


class TestRunner:
    def test_run_trials_reproducible(self):
        trial = lambda rng: float(rng.random())  # noqa: E731
        first = run_trials(trial, 10, seed=5)
        second = run_trials(trial, 10, seed=5)
        assert np.array_equal(first, second)
        assert len(set(first.tolist())) == 10  # independent streams

    def test_run_trials_validation(self):
        with pytest.raises(ExperimentError):
            run_trials(lambda rng: 1.0, 0)

    def test_summarize_trials(self):
        trial = lambda rng: 0.5 + 0.01 * float(rng.standard_normal())  # noqa: E731
        summary = summarize_trials(0.5, trial, 100, seed=1)
        assert abs(summary.bias) < 0.01
        assert summary.trials == 100

    def test_sweep_structure(self):
        def make(parameter):
            truth = float(parameter)
            return truth, lambda rng: truth + 0.0 * rng.random(), \
                {"p": parameter}

        points = sweep([1, 2, 3], make, trials=5, seed=2)
        assert [point.parameter for point in points] == [1, 2, 3]
        assert all(point.summary.mean == point.parameter
                   for point in points)
        assert points[0].extra == {"p": 1}

    def test_timed(self):
        result = timed(lambda: sum(range(1000)))
        assert result.value == 499500
        assert result.seconds >= 0


class TestReport:
    def test_fmt_float(self):
        assert fmt_float(0.123456) == "0.1235"
        assert fmt_float(1.0, digits=2) == "1.00"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3 * 1024**2) == "3.0 MiB"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.startswith("My Table")

    def test_format_table_validation(self):
        with pytest.raises(ExperimentError):
            format_table([], [])
        with pytest.raises(ExperimentError):
            format_table(["a"], [["x", "y"]])

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"
        assert text.splitlines()[2] == "| 1 | 2 |"

    def test_banner(self):
        assert "My Section" in banner("My Section")


class TestRegistry:
    def test_every_paper_artefact_present(self):
        for artefact in ("fig1", "fig2", "table1", "table2", "thm1",
                         "thm2", "thm3", "ex1"):
            assert artefact in EXPERIMENTS

    def test_future_work_ablations_present(self):
        assert "abl-paging" in EXPERIMENTS
        assert "abl-block" in EXPERIMENTS

    def test_get_experiment(self):
        spec = get_experiment("thm1")
        assert spec.paper_ref == "Theorem 1"
        assert spec.bench_module is not None

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("thm9")

    def test_list_is_ordered_and_complete(self):
        specs = list_experiments()
        assert len(specs) == len(EXPERIMENTS)
        assert specs[0].id == "fig1"

    def test_only_table1_lacks_a_bench(self):
        missing = [spec.id for spec in list_experiments()
                   if spec.bench_module is None]
        assert missing == ["table1"]

    def test_bench_modules_exist_on_disk(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for spec in list_experiments():
            if spec.bench_module is not None:
                assert (root / spec.bench_module).exists(), \
                    spec.bench_module


class TestAdaptiveTrials:
    """run_request_trials_adaptive: staged prefix replay of a budget."""

    def make_request(self, trials=16):
        from repro.engine.requests import EstimationRequest
        from repro.workloads.generators import make_histogram

        histogram = make_histogram(8_000, 60, 14, seed=21)
        return EstimationRequest(histogram=histogram,
                                 algorithm="null_suppression",
                                 fraction=0.02, trials=trials)

    def test_values_are_prefix_of_full_run(self):
        from repro.engine.engine import EstimationEngine
        from repro.experiments.runner import (run_request_trials,
                                              run_request_trials_adaptive)

        request = self.make_request()
        full = run_request_trials(request,
                                  engine=EstimationEngine(seed=300))
        outcome = run_request_trials_adaptive(
            request, engine=EstimationEngine(seed=300), tolerance=0.002)
        assert outcome.trials_run <= outcome.trials_budget == 16
        assert outcome.values.tolist() \
            == full[:outcome.trials_run].tolist()
        assert sum(outcome.stages) == outcome.trials_run
        # Doubling schedule: 1, 1, 2, 4, ... clipped to the budget.
        expected = [1, 1, 2, 4, 8, 16]
        assert list(outcome.stages) == expected[:len(outcome.stages)]

    def test_loose_tolerance_converges_early(self):
        from repro.engine.engine import EstimationEngine
        from repro.experiments.runner import run_request_trials_adaptive

        outcome = run_request_trials_adaptive(
            self.make_request(64), engine=EstimationEngine(seed=300),
            tolerance=1.0)
        assert outcome.converged
        assert outcome.trials_run == 2  # first interval already inside
        assert outcome.halfwidth is not None and outcome.halfwidth <= 1.0

    def test_budget_exhaustion_reported(self):
        from repro.engine.engine import EstimationEngine
        from repro.experiments.runner import run_request_trials_adaptive

        outcome = run_request_trials_adaptive(
            self.make_request(3), engine=EstimationEngine(seed=300),
            tolerance=1e-12)
        assert outcome.trials_run == 3
        assert list(outcome.stages) == [1, 1, 1]
        # The final interval collapses once every budgeted trial ran,
        # so a spent budget still reports converged with halfwidth 0.
        assert outcome.halfwidth == 0.0

    def test_validation(self):
        from repro.experiments.runner import run_request_trials_adaptive

        with pytest.raises(ExperimentError):
            run_request_trials_adaptive(self.make_request(), trials=0)
        with pytest.raises(ExperimentError):
            run_request_trials_adaptive(self.make_request(),
                                        tolerance=0.0)
