"""Unit tests for repro.engine — shared-sample batch estimation."""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.errors import EstimationError, SamplingError
from repro.sampling.block import BlockSampler
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithReplacementSampler)
from repro.storage.index import IndexKind
from repro.compression.null_suppression import NullSuppression
from repro.core.samplecf import SampleCF, true_cf_histogram
from repro.experiments.runner import (engine_sweep, run_request_trials,
                                      summarize_request)
from repro.workloads.generators import make_histogram
from repro.engine import (EstimationEngine, EstimationRequest,
                          ProcessPoolPlanExecutor, SampleCache,
                          SerialExecutor, ThreadPoolPlanExecutor,
                          make_executor, plan_batch, plan_units,
                          run_plan_unit)

PAGE = 512

ALGORITHMS = ("null_suppression", "global_dictionary", "rle")


@pytest.fixture
def table(medium_table):
    return medium_table


@pytest.fixture
def histogram():
    return make_histogram(8000, 80, 20, seed=3)


class TestEstimationRequest:
    def test_needs_exactly_one_source(self, table, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(columns=("a",))
        with pytest.raises(EstimationError):
            EstimationRequest(table=table, histogram=histogram,
                              columns=("a",))

    def test_table_request_needs_columns(self, table):
        with pytest.raises(EstimationError):
            EstimationRequest(table=table)

    def test_histogram_rejects_block_sampler(self, histogram):
        with pytest.raises(SamplingError):
            EstimationRequest(histogram=histogram, sampler=BlockSampler())

    def test_histogram_rejects_physical_accounting(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram, accounting="physical")

    def test_fraction_validated(self, histogram):
        with pytest.raises(SamplingError):
            EstimationRequest(histogram=histogram, fraction=0.0)

    def test_trials_validated(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram, trials=0)

    def test_generator_seed_single_trial_only(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram,
                              seed=np.random.default_rng(1), trials=2)

    def test_algorithm_name_resolved(self, histogram):
        request = EstimationRequest(histogram=histogram, algorithm="rle")
        assert request.algorithm.name == "rle"


class TestPlanning:
    def test_dedup_identical_requests(self, histogram):
        request = EstimationRequest(histogram=histogram, fraction=0.05,
                                    trials=2)
        twin = EstimationRequest(histogram=histogram, fraction=0.05,
                                 trials=2)
        plan = plan_batch([request, twin, request], master_seed=1)
        assert plan.num_requests == 3
        assert plan.num_unique == 1
        assert plan.nodes[0].positions == (0, 1, 2)

    def test_distinct_algorithms_share_sample_keys(self, table):
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05)
                    for name in ALGORITHMS]
        plan = plan_batch(requests, master_seed=1)
        assert plan.num_unique == len(ALGORITHMS)
        assert plan.num_distinct_samples == 1
        assert plan.num_index_layouts == 1

    def test_explicit_seed_trial_zero_is_verbatim(self, table):
        request = EstimationRequest(table=table, columns=("a",),
                                    seed=42, trials=3)
        plan = plan_batch([request], master_seed=9)
        seeds = plan.nodes[0].trial_seeds
        assert seeds[0] == 42
        assert len(set(seeds)) == 3

    def test_master_seed_changes_derived_seeds(self, table):
        request = EstimationRequest(table=table, columns=("a",))
        one = plan_batch([request], master_seed=1).nodes[0].trial_seeds
        two = plan_batch([request], master_seed=2).nodes[0].trial_seeds
        assert one != two

    def test_describe_mentions_counts(self, histogram):
        plan = plan_batch([EstimationRequest(histogram=histogram)],
                          master_seed=0)
        assert "1 requests" in plan.describe()


class TestSampleCache:
    def test_lru_eviction(self):
        cache = SampleCache(capacity=2)
        sentinel = object()
        cache.get_or_create(("a",), lambda: sentinel)
        cache.get_or_create(("b",), lambda: sentinel)
        cache.get_or_create(("c",), lambda: sentinel)
        assert len(cache) == 2
        _, hit = cache.get_or_create(("a",), lambda: sentinel)
        assert not hit  # "a" was evicted and had to be rebuilt

    def test_hit_after_create(self):
        cache = SampleCache(capacity=4)
        value, hit = cache.get_or_create(("k",), lambda: "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_create(("k",), lambda: "other")
        assert (value, hit) == ("v", True)

    def test_failed_factory_propagates_and_retries(self):
        cache = SampleCache(capacity=4)
        with pytest.raises(RuntimeError):
            cache.get_or_create(("k",), self._boom)
        value, hit = cache.get_or_create(("k",), lambda: "ok")
        assert (value, hit) == ("ok", False)

    @staticmethod
    def _boom():
        raise RuntimeError("factory failed")

    def test_capacity_validated(self):
        with pytest.raises(EstimationError):
            SampleCache(capacity=0)
        with pytest.raises(EstimationError):
            SampleCache(capacity=4, max_bytes=0)

    def test_failed_creator_wakes_waiters_one_retries(self):
        """Single-flight failure under real threads.

        The first creator fails while others wait on its event; the
        waiters must wake, exactly one must retry the factory (and
        succeed), and everyone else must then hit the cached value.
        """
        cache = SampleCache(capacity=4)
        creator_entered = threading.Event()
        waiters_ready = threading.Event()
        calls: list[str] = []
        calls_lock = threading.Lock()

        def factory():
            with calls_lock:
                calls.append(threading.current_thread().name)
                first = len(calls) == 1
            if first:
                creator_entered.set()
                # Hold the single-flight slot until the other threads
                # are definitely enqueued as waiters, then fail.
                assert waiters_ready.wait(timeout=5.0)
                raise RuntimeError("materialization failed")
            return "ok"

        outcomes: dict[str, object] = {}

        def worker(name):
            try:
                outcomes[name] = cache.get_or_create(("k",), factory)
            except RuntimeError as exc:
                outcomes[name] = exc

        threads = [threading.Thread(target=worker, args=(f"t{i}",),
                                    name=f"t{i}") for i in range(5)]
        threads[0].start()
        assert creator_entered.wait(timeout=5.0)
        for thread in threads[1:]:
            thread.start()
        # Give the late threads a moment to park on the pending event,
        # then let the creator fail.
        time.sleep(0.05)
        waiters_ready.set()
        for thread in threads:
            thread.join(timeout=10.0)
        errors = [o for o in outcomes.values()
                  if isinstance(o, RuntimeError)]
        successes = [o for o in outcomes.values() if isinstance(o, tuple)]
        assert len(errors) == 1  # only the failed creator saw the error
        assert len(successes) == 4
        assert all(value == "ok" for value, _hit in successes)
        # One retry materialized; the rest were cache hits.
        assert sum(1 for _v, hit in successes if not hit) == 1
        assert len(calls) == 2

    def test_persistent_failure_surfaces_to_every_thread(self):
        cache = SampleCache(capacity=4)
        barrier = threading.Barrier(4)
        outcomes: list[object] = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                cache.get_or_create(("k",), self._boom)
            except RuntimeError as exc:
                with lock:
                    outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(outcomes) == 4  # the error persists and surfaces
        assert len(cache) == 0


class _Sized:
    """A cache entry double carrying only a byte size."""

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


class TestSampleCacheBytes:
    """Byte-aware eviction: the LRU counts payload bytes, not entries."""

    def test_large_sample_evicts_several_small_ones(self):
        cache = SampleCache(capacity=100, max_bytes=1000)
        for position in range(5):
            cache.get_or_create((position,), lambda: _Sized(100))
        assert len(cache) == 5
        assert cache.nbytes == 500
        cache.get_or_create(("big",), lambda: _Sized(950))
        # 500 + 950 > 1000: every small entry must go, LRU-first.
        assert len(cache) == 1
        assert cache.nbytes == 950
        _, hit = cache.get_or_create(("big",), lambda: _Sized(950))
        assert hit

    def test_partial_eviction_stops_at_budget(self):
        cache = SampleCache(capacity=100, max_bytes=1000)
        for position in range(4):
            cache.get_or_create((position,), lambda: _Sized(250))
        cache.get_or_create(("extra",), lambda: _Sized(300))
        # 1300 -> evict two oldest (250 each) to reach 800 <= 1000.
        assert cache.nbytes == 800
        assert len(cache) == 3
        _, hit = cache.get_or_create((0,), lambda: _Sized(250))
        assert not hit  # the oldest was evicted

    def test_single_oversized_entry_is_kept(self):
        """Evicting the entry a unit is about to use would thrash."""
        cache = SampleCache(capacity=100, max_bytes=1000)
        cache.get_or_create(("huge",), lambda: _Sized(5000))
        assert len(cache) == 1
        assert cache.nbytes == 5000

    def test_clear_resets_bytes(self):
        cache = SampleCache(capacity=4, max_bytes=1000)
        cache.get_or_create(("k",), lambda: _Sized(400))
        cache.clear()
        assert cache.nbytes == 0

    def test_env_override(self, monkeypatch):
        from repro.engine import (SAMPLE_CACHE_BYTES_ENV,
                                  resolve_sample_cache_bytes)

        monkeypatch.setenv(SAMPLE_CACHE_BYTES_ENV, "4096")
        assert resolve_sample_cache_bytes() == 4096
        assert SampleCache(capacity=4).max_bytes == 4096
        monkeypatch.setenv(SAMPLE_CACHE_BYTES_ENV, "not-a-number")
        with pytest.raises(EstimationError):
            resolve_sample_cache_bytes()

    def test_materialized_samples_carry_bytes(self):
        """Real engine samples charge real bytes into the gauge."""
        engine = EstimationEngine(seed=3)
        request = EstimationRequest(
            histogram=make_histogram(2000, 40, 12, seed=5),
            algorithm="null_suppression", fraction=0.1)
        engine.execute([request])
        assert engine.cache.nbytes > 0

    def test_byte_gauges_in_stats(self):
        engine = EstimationEngine(seed=3, sample_cache_bytes=12345)
        data = engine.stats.as_dict()
        assert data["gauges"]["sample_cache_max_bytes"] == 12345
        assert data["gauges"]["sample_cache_bytes"] == 0


class TestEngineSharing:
    def test_sample_shared_across_algorithms(self, table):
        engine = EstimationEngine(seed=5)
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05)
                    for name in ALGORITHMS]
        batch = engine.execute(requests)
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["sample_cache_hits"] == len(ALGORITHMS) - 1
        assert batch.stats["indexes_built"] == 1
        assert batch.stats["index_reuse_hits"] == len(ALGORITHMS) - 1
        assert batch.stats["estimates_computed"] == len(ALGORITHMS)

    def test_trials_share_samples_across_requests(self, table):
        engine = EstimationEngine(seed=5)
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05,
                                      trials=4)
                    for name in ALGORITHMS]
        batch = engine.execute(requests)
        # One sample per trial, shared by all algorithms.
        assert batch.stats["samples_materialized"] == 4
        assert batch.stats["sample_cache_hits"] == \
            4 * (len(ALGORITHMS) - 1)

    def test_column_sets_share_one_table_sample(self, table):
        engine = EstimationEngine(seed=5)
        # medium_table has a single column; same columns but different
        # index kinds must share the sample yet build two indexes.
        requests = [
            EstimationRequest(table=table, columns=("a",), fraction=0.05,
                              kind=IndexKind.CLUSTERED),
            EstimationRequest(table=table, columns=("a",), fraction=0.05,
                              kind=IndexKind.NONCLUSTERED),
        ]
        batch = engine.execute(requests)
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["indexes_built"] == 2

    def test_cache_persists_across_batches(self, table):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.05)
        first = engine.execute([request])
        second = engine.execute([request])
        assert first.stats["samples_materialized"] == 1
        assert second.stats["samples_materialized"] == 0
        assert second.stats["sample_cache_hits"] == 1
        assert first.results[0].estimates[0].estimate == \
            second.results[0].estimates[0].estimate

    def test_dedup_fans_results_back_out(self, histogram):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(histogram=histogram, fraction=0.05)
        batch = engine.execute([request, request, request])
        assert len(batch.results) == 3
        values = {result.estimates[0].estimate
                  for result in batch.results}
        assert len(values) == 1
        assert batch.stats["unique_requests"] == 1

    def test_bernoulli_sampler_supported(self, histogram):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(histogram=histogram,
                                    sampler=BernoulliSampler(0.05),
                                    fraction=0.05)
        result = engine.estimate(request)
        assert result.estimates[0].estimate > 0

    def test_empty_batch_rejected(self):
        engine = EstimationEngine(seed=5)
        with pytest.raises(EstimationError):
            engine.execute([])

    def test_non_request_rejected(self):
        engine = EstimationEngine(seed=5)
        with pytest.raises(EstimationError):
            engine.execute(["not a request"])


class TestFacade:
    def test_estimate_table_matches_engine(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        facade = estimator.estimate_table(table, 0.05, ["a"], seed=42)
        engine = EstimationEngine(seed=0)
        request = EstimationRequest(table=table, columns=("a",),
                                    algorithm=NullSuppression(),
                                    fraction=0.05, seed=42,
                                    page_size=PAGE)
        direct = engine.estimate(request).estimates[0]
        assert facade.estimate == direct.estimate
        assert facade.details == direct.details

    def test_facade_with_private_engine(self, table):
        engine = EstimationEngine(seed=1)
        estimator = SampleCF(NullSuppression(), page_size=PAGE,
                             engine=engine)
        estimator.estimate_table(table, 0.05, ["a"], seed=1)
        assert engine.stats["samples_materialized"] == 1

    def test_unseeded_calls_stay_random(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        estimates = {estimator.estimate_table(table, 0.02, ["a"]).estimate
                     for _ in range(5)}
        assert len(estimates) > 1

    def test_unseeded_calls_do_not_pollute_cache(self, table):
        engine = EstimationEngine(seed=1)
        estimator = SampleCF(NullSuppression(), page_size=PAGE,
                             engine=engine)
        for _ in range(3):
            estimator.estimate_table(table, 0.02, ["a"])
        assert len(engine.cache) == 0
        estimator.estimate_table(table, 0.02, ["a"], seed=5)
        assert len(engine.cache) == 1


class TestExecutors:
    def test_make_executor_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("threads", max_workers=2).name == "threads"
        assert make_executor("process", max_workers=2).name == "process"

    def test_make_executor_aliases(self):
        assert make_executor("thread").name == "threads"
        assert make_executor("processes").name == "process"

    def test_make_executor_unknown(self):
        with pytest.raises(EstimationError):
            make_executor("gpu")

    def test_thread_pool_validates_workers(self):
        with pytest.raises(EstimationError):
            ThreadPoolPlanExecutor(max_workers=0)

    def test_process_pool_validates_workers(self):
        with pytest.raises(EstimationError):
            ProcessPoolPlanExecutor(max_workers=0)

    def test_process_pool_validates_start_method(self):
        with pytest.raises(EstimationError):
            ProcessPoolPlanExecutor(start_method="telepathy")

    def test_serial_preserves_order(self):
        tasks = [lambda context, i=i: i for i in range(10)]
        assert SerialExecutor().run(tasks) == list(range(10))

    def test_threads_preserve_order(self):
        tasks = [lambda context, i=i: i for i in range(10)]
        assert ThreadPoolPlanExecutor(4).run(tasks) == list(range(10))

    def test_process_pool_rejects_non_units(self):
        with pytest.raises(EstimationError):
            ProcessPoolPlanExecutor(2).run([lambda context: 1])

    def test_engine_accepts_executor_name(self, histogram):
        engine = EstimationEngine(seed=2, executor="threads")
        assert engine.executor.name == "threads"
        request = EstimationRequest(histogram=histogram, fraction=0.05)
        by_name = engine.execute([request], executor="serial")
        assert by_name.results[0].estimates[0].estimate > 0


class TestProcessExecution:
    def test_process_matches_serial(self, table, histogram):
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05,
                                      trials=2, page_size=PAGE)
                    for name in ALGORITHMS]
        requests.append(EstimationRequest(histogram=histogram,
                                          fraction=0.05, trials=2))
        serial = EstimationEngine(seed=13).execute(requests)
        process = EstimationEngine(
            seed=13, executor=ProcessPoolPlanExecutor(2)).execute(requests)
        for ours, theirs in zip(serial.results, process.results):
            assert [e.estimate for e in ours.estimates] == \
                [e.estimate for e in theirs.estimates]
            assert [e.details for e in ours.estimates] == \
                [e.details for e in theirs.estimates]

    def test_process_merges_worker_stats(self, histogram):
        engine = EstimationEngine(seed=13,
                                  executor=ProcessPoolPlanExecutor(2))
        request = EstimationRequest(histogram=histogram, fraction=0.05,
                                    trials=3)
        batch = engine.execute([request])
        assert batch.stats["estimates_computed"] == 3
        assert batch.stats["samples_materialized"] >= 3 - \
            batch.stats["sample_cache_hits"]

    def test_opaque_seed_runs_in_parent(self, histogram):
        engine = EstimationEngine(seed=13,
                                  executor=ProcessPoolPlanExecutor(2))
        request = EstimationRequest(histogram=histogram, fraction=0.05,
                                    seed=np.random.default_rng(3))
        result = engine.estimate(request)
        assert result.estimates[0].estimate > 0


class TestPlanUnitPickling:
    def test_table_unit_roundtrips(self, table):
        engine = EstimationEngine(seed=3)
        plan = engine.plan([EstimationRequest(
            table=table, columns=("a",), fraction=0.05, page_size=PAGE)])
        units = plan_units(plan)
        restored = pickle.loads(pickle.dumps(units))
        assert restored[0].seed == units[0].seed
        assert run_plan_unit(restored[0]) == run_plan_unit(units[0])

    def test_histogram_unit_roundtrips(self, histogram):
        engine = EstimationEngine(seed=3)
        plan = engine.plan([EstimationRequest(
            histogram=histogram, fraction=0.05, trials=2)])
        units = plan_units(plan)
        restored = pickle.loads(pickle.dumps(units))
        assert len(restored) == 2
        for ours, theirs in zip(units, restored):
            assert run_plan_unit(theirs) == run_plan_unit(ours)

    def test_units_share_one_table_pickle(self, table):
        engine = EstimationEngine(seed=3)
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05,
                                      page_size=PAGE)
                    for name in ALGORITHMS]
        units = plan_units(engine.plan(requests))
        restored = pickle.loads(pickle.dumps(units))
        tables = {id(unit.request.table) for unit in restored}
        assert len(tables) == 1  # pickle memo keeps the source shared

    def test_materialized_sample_roundtrips(self, table):
        from repro.engine import materialize_table_sample
        from repro.sampling.row_samplers import WithReplacementSampler

        sample = materialize_table_sample(
            table, WithReplacementSampler(), 0.05, 7)
        sample.index_for(table, ("a",), IndexKind.CLUSTERED, PAGE, 1.0)
        restored = pickle.loads(pickle.dumps(sample))
        assert restored.rows == sample.rows
        assert restored.rids == sample.rids
        entry = restored.index_for(table, ("a",), IndexKind.CLUSTERED,
                                   PAGE, 1.0)
        assert entry.distinct == \
            sample.indexes[(("a",), "clustered", PAGE, 1.0)].distinct


class TestStatsConcurrency:
    def test_concurrent_execute_stats_isolated(self):
        """Two racing execute() calls each report their own movement."""
        engine = EstimationEngine(seed=7)
        small = make_histogram(4000, 40, 10, seed=21)
        large = make_histogram(6000, 60, 10, seed=22)
        small_batch = [EstimationRequest(histogram=small, fraction=0.05,
                                         trials=2)]
        large_batch = [EstimationRequest(histogram=large, fraction=0.05,
                                         trials=3),
                       EstimationRequest(histogram=large, fraction=0.02,
                                         trials=3)]
        outcomes: dict[str, list] = {"small": [], "large": []}

        def run(name, requests):
            for _ in range(10):
                outcomes[name].append(engine.execute(requests))

        threads = [threading.Thread(target=run, args=("small",
                                                      small_batch)),
                   threading.Thread(target=run, args=("large",
                                                      large_batch))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for batch in outcomes["small"]:
            assert batch.stats["requests"] == 1
            assert batch.stats["trials"] == 2
            assert batch.stats["estimates_computed"] == 2
        for batch in outcomes["large"]:
            assert batch.stats["requests"] == 2
            assert batch.stats["trials"] == 6
            assert batch.stats["estimates_computed"] == 6
        # The global counters saw every batch exactly once.
        assert engine.stats["requests"] == 10 * 1 + 10 * 2
        assert engine.stats["estimates_computed"] == 10 * 2 + 10 * 6

    def test_default_engine_single_instance_under_race(self):
        import repro.engine.engine as engine_module

        original = engine_module._DEFAULT_ENGINE
        engine_module._DEFAULT_ENGINE = None
        try:
            barrier = threading.Barrier(8)
            seen = []

            def grab():
                barrier.wait()
                seen.append(engine_module.default_engine())

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(engine) for engine in seen}) == 1
        finally:
            engine_module._DEFAULT_ENGINE = original

    def test_stats_merge_rejects_unknown_counter(self):
        from repro.engine import EngineStats

        stats = EngineStats()
        with pytest.raises(EstimationError):
            stats.merge({"made_up": 3})


class TestRunnerIntegration:
    def test_engine_and_seed_together_rejected(self, histogram):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_request_trials(
                EstimationRequest(histogram=histogram), trials=2,
                engine=EstimationEngine(seed=1), seed=5)

    def test_run_request_trials(self, histogram):
        values = run_request_trials(
            EstimationRequest(histogram=histogram, fraction=0.05),
            trials=6, seed=3)
        assert values.shape == (6,)
        assert len(set(values.tolist())) > 1

    def test_summarize_request(self, histogram):
        truth = true_cf_histogram(histogram, "null_suppression")
        summary = summarize_request(
            truth, EstimationRequest(histogram=histogram, fraction=0.05),
            trials=6, seed=3)
        assert summary.trials == 6
        assert summary.mean_ratio_error >= 1.0

    def test_engine_sweep_shares_samples(self, table):
        engine = EstimationEngine(seed=4)
        truth = 0.7  # placeholder truth; sharing is what's under test

        def point(name):
            request = EstimationRequest(table=table, columns=("a",),
                                        algorithm=name, fraction=0.05)
            return truth, request, {"algorithm": name}

        points = engine_sweep(ALGORITHMS, point, trials=3, engine=engine)
        assert len(points) == len(ALGORITHMS)
        assert all(p.summary.trials == 3 for p in points)
        # 3 trials' samples shared across the whole sweep.
        assert engine.stats["samples_materialized"] == 3
