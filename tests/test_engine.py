"""Unit tests for repro.engine — shared-sample batch estimation."""

import numpy as np
import pytest

from repro.errors import EstimationError, SamplingError
from repro.sampling.block import BlockSampler
from repro.sampling.row_samplers import (BernoulliSampler,
                                         WithReplacementSampler)
from repro.storage.index import IndexKind
from repro.compression.null_suppression import NullSuppression
from repro.core.samplecf import SampleCF, true_cf_histogram
from repro.experiments.runner import (engine_sweep, run_request_trials,
                                      summarize_request)
from repro.workloads.generators import make_histogram
from repro.engine import (EstimationEngine, EstimationRequest, SampleCache,
                          SerialExecutor, ThreadPoolPlanExecutor,
                          make_executor, plan_batch)

PAGE = 512

ALGORITHMS = ("null_suppression", "global_dictionary", "rle")


@pytest.fixture
def table(medium_table):
    return medium_table


@pytest.fixture
def histogram():
    return make_histogram(8000, 80, 20, seed=3)


class TestEstimationRequest:
    def test_needs_exactly_one_source(self, table, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(columns=("a",))
        with pytest.raises(EstimationError):
            EstimationRequest(table=table, histogram=histogram,
                              columns=("a",))

    def test_table_request_needs_columns(self, table):
        with pytest.raises(EstimationError):
            EstimationRequest(table=table)

    def test_histogram_rejects_block_sampler(self, histogram):
        with pytest.raises(SamplingError):
            EstimationRequest(histogram=histogram, sampler=BlockSampler())

    def test_histogram_rejects_physical_accounting(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram, accounting="physical")

    def test_fraction_validated(self, histogram):
        with pytest.raises(SamplingError):
            EstimationRequest(histogram=histogram, fraction=0.0)

    def test_trials_validated(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram, trials=0)

    def test_generator_seed_single_trial_only(self, histogram):
        with pytest.raises(EstimationError):
            EstimationRequest(histogram=histogram,
                              seed=np.random.default_rng(1), trials=2)

    def test_algorithm_name_resolved(self, histogram):
        request = EstimationRequest(histogram=histogram, algorithm="rle")
        assert request.algorithm.name == "rle"


class TestPlanning:
    def test_dedup_identical_requests(self, histogram):
        request = EstimationRequest(histogram=histogram, fraction=0.05,
                                    trials=2)
        twin = EstimationRequest(histogram=histogram, fraction=0.05,
                                 trials=2)
        plan = plan_batch([request, twin, request], master_seed=1)
        assert plan.num_requests == 3
        assert plan.num_unique == 1
        assert plan.nodes[0].positions == (0, 1, 2)

    def test_distinct_algorithms_share_sample_keys(self, table):
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05)
                    for name in ALGORITHMS]
        plan = plan_batch(requests, master_seed=1)
        assert plan.num_unique == len(ALGORITHMS)
        assert plan.num_distinct_samples == 1
        assert plan.num_index_layouts == 1

    def test_explicit_seed_trial_zero_is_verbatim(self, table):
        request = EstimationRequest(table=table, columns=("a",),
                                    seed=42, trials=3)
        plan = plan_batch([request], master_seed=9)
        seeds = plan.nodes[0].trial_seeds
        assert seeds[0] == 42
        assert len(set(seeds)) == 3

    def test_master_seed_changes_derived_seeds(self, table):
        request = EstimationRequest(table=table, columns=("a",))
        one = plan_batch([request], master_seed=1).nodes[0].trial_seeds
        two = plan_batch([request], master_seed=2).nodes[0].trial_seeds
        assert one != two

    def test_describe_mentions_counts(self, histogram):
        plan = plan_batch([EstimationRequest(histogram=histogram)],
                          master_seed=0)
        assert "1 requests" in plan.describe()


class TestSampleCache:
    def test_lru_eviction(self):
        cache = SampleCache(capacity=2)
        sentinel = object()
        cache.get_or_create(("a",), lambda: sentinel)
        cache.get_or_create(("b",), lambda: sentinel)
        cache.get_or_create(("c",), lambda: sentinel)
        assert len(cache) == 2
        _, hit = cache.get_or_create(("a",), lambda: sentinel)
        assert not hit  # "a" was evicted and had to be rebuilt

    def test_hit_after_create(self):
        cache = SampleCache(capacity=4)
        value, hit = cache.get_or_create(("k",), lambda: "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_create(("k",), lambda: "other")
        assert (value, hit) == ("v", True)

    def test_failed_factory_propagates_and_retries(self):
        cache = SampleCache(capacity=4)
        with pytest.raises(RuntimeError):
            cache.get_or_create(("k",), self._boom)
        value, hit = cache.get_or_create(("k",), lambda: "ok")
        assert (value, hit) == ("ok", False)

    @staticmethod
    def _boom():
        raise RuntimeError("factory failed")

    def test_capacity_validated(self):
        with pytest.raises(EstimationError):
            SampleCache(capacity=0)


class TestEngineSharing:
    def test_sample_shared_across_algorithms(self, table):
        engine = EstimationEngine(seed=5)
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05)
                    for name in ALGORITHMS]
        batch = engine.execute(requests)
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["sample_cache_hits"] == len(ALGORITHMS) - 1
        assert batch.stats["indexes_built"] == 1
        assert batch.stats["index_reuse_hits"] == len(ALGORITHMS) - 1
        assert batch.stats["estimates_computed"] == len(ALGORITHMS)

    def test_trials_share_samples_across_requests(self, table):
        engine = EstimationEngine(seed=5)
        requests = [EstimationRequest(table=table, columns=("a",),
                                      algorithm=name, fraction=0.05,
                                      trials=4)
                    for name in ALGORITHMS]
        batch = engine.execute(requests)
        # One sample per trial, shared by all algorithms.
        assert batch.stats["samples_materialized"] == 4
        assert batch.stats["sample_cache_hits"] == \
            4 * (len(ALGORITHMS) - 1)

    def test_column_sets_share_one_table_sample(self, table):
        engine = EstimationEngine(seed=5)
        # medium_table has a single column; same columns but different
        # index kinds must share the sample yet build two indexes.
        requests = [
            EstimationRequest(table=table, columns=("a",), fraction=0.05,
                              kind=IndexKind.CLUSTERED),
            EstimationRequest(table=table, columns=("a",), fraction=0.05,
                              kind=IndexKind.NONCLUSTERED),
        ]
        batch = engine.execute(requests)
        assert batch.stats["samples_materialized"] == 1
        assert batch.stats["indexes_built"] == 2

    def test_cache_persists_across_batches(self, table):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(table=table, columns=("a",),
                                    fraction=0.05)
        first = engine.execute([request])
        second = engine.execute([request])
        assert first.stats["samples_materialized"] == 1
        assert second.stats["samples_materialized"] == 0
        assert second.stats["sample_cache_hits"] == 1
        assert first.results[0].estimates[0].estimate == \
            second.results[0].estimates[0].estimate

    def test_dedup_fans_results_back_out(self, histogram):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(histogram=histogram, fraction=0.05)
        batch = engine.execute([request, request, request])
        assert len(batch.results) == 3
        values = {result.estimates[0].estimate
                  for result in batch.results}
        assert len(values) == 1
        assert batch.stats["unique_requests"] == 1

    def test_bernoulli_sampler_supported(self, histogram):
        engine = EstimationEngine(seed=5)
        request = EstimationRequest(histogram=histogram,
                                    sampler=BernoulliSampler(0.05),
                                    fraction=0.05)
        result = engine.estimate(request)
        assert result.estimates[0].estimate > 0

    def test_empty_batch_rejected(self):
        engine = EstimationEngine(seed=5)
        with pytest.raises(EstimationError):
            engine.execute([])

    def test_non_request_rejected(self):
        engine = EstimationEngine(seed=5)
        with pytest.raises(EstimationError):
            engine.execute(["not a request"])


class TestFacade:
    def test_estimate_table_matches_engine(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        facade = estimator.estimate_table(table, 0.05, ["a"], seed=42)
        engine = EstimationEngine(seed=0)
        request = EstimationRequest(table=table, columns=("a",),
                                    algorithm=NullSuppression(),
                                    fraction=0.05, seed=42,
                                    page_size=PAGE)
        direct = engine.estimate(request).estimates[0]
        assert facade.estimate == direct.estimate
        assert facade.details == direct.details

    def test_facade_with_private_engine(self, table):
        engine = EstimationEngine(seed=1)
        estimator = SampleCF(NullSuppression(), page_size=PAGE,
                             engine=engine)
        estimator.estimate_table(table, 0.05, ["a"], seed=1)
        assert engine.stats["samples_materialized"] == 1

    def test_unseeded_calls_stay_random(self, table):
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        estimates = {estimator.estimate_table(table, 0.02, ["a"]).estimate
                     for _ in range(5)}
        assert len(estimates) > 1

    def test_unseeded_calls_do_not_pollute_cache(self, table):
        engine = EstimationEngine(seed=1)
        estimator = SampleCF(NullSuppression(), page_size=PAGE,
                             engine=engine)
        for _ in range(3):
            estimator.estimate_table(table, 0.02, ["a"])
        assert len(engine.cache) == 0
        estimator.estimate_table(table, 0.02, ["a"], seed=5)
        assert len(engine.cache) == 1


class TestExecutors:
    def test_make_executor_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("threads", max_workers=2).name == "threads"

    def test_make_executor_unknown(self):
        with pytest.raises(EstimationError):
            make_executor("gpu")

    def test_thread_pool_validates_workers(self):
        with pytest.raises(EstimationError):
            ThreadPoolPlanExecutor(max_workers=0)

    def test_serial_preserves_order(self):
        tasks = [lambda i=i: i for i in range(10)]
        assert SerialExecutor().run(tasks) == list(range(10))

    def test_threads_preserve_order(self):
        tasks = [lambda i=i: i for i in range(10)]
        assert ThreadPoolPlanExecutor(4).run(tasks) == list(range(10))


class TestRunnerIntegration:
    def test_engine_and_seed_together_rejected(self, histogram):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_request_trials(
                EstimationRequest(histogram=histogram), trials=2,
                engine=EstimationEngine(seed=1), seed=5)

    def test_run_request_trials(self, histogram):
        values = run_request_trials(
            EstimationRequest(histogram=histogram, fraction=0.05),
            trials=6, seed=3)
        assert values.shape == (6,)
        assert len(set(values.tolist())) > 1

    def test_summarize_request(self, histogram):
        truth = true_cf_histogram(histogram, "null_suppression")
        summary = summarize_request(
            truth, EstimationRequest(histogram=histogram, fraction=0.05),
            trials=6, seed=3)
        assert summary.trials == 6
        assert summary.mean_ratio_error >= 1.0

    def test_engine_sweep_shares_samples(self, table):
        engine = EstimationEngine(seed=4)
        truth = 0.7  # placeholder truth; sharing is what's under test

        def point(name):
            request = EstimationRequest(table=table, columns=("a",),
                                        algorithm=name, fraction=0.05)
            return truth, request, {"algorithm": name}

        points = engine_sweep(ALGORITHMS, point, trials=3, engine=engine)
        assert len(points) == len(ALGORITHMS)
        assert all(p.summary.trials == 3 for p in points)
        # 3 trials' samples shared across the whole sweep.
        assert engine.stats["samples_materialized"] == 3
