"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import CharType, IntegerType, VarCharType


def two_column_schema() -> Schema:
    return Schema([Column.of("name", "char(20)"),
                   Column.of("qty", "integer")])


class TestColumn:
    def test_of_parses_type(self):
        column = Column.of("name", "char(20)")
        assert column.name == "name"
        assert column.dtype == CharType(20)

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("2bad", CharType(5))
        with pytest.raises(SchemaError):
            Column("", CharType(5))
        with pytest.raises(SchemaError):
            Column("has space", CharType(5))

    def test_str(self):
        assert str(Column.of("a", "char(3)")) == "a char(3)"


class TestSchema:
    def test_of_keyword_construction(self):
        schema = Schema.of(name="char(20)", qty="integer")
        assert schema.names == ("name", "qty")
        assert schema["qty"].dtype == IntegerType()

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column.of("a", "char(2)"), Column.of("a", "integer")])

    def test_len_iter_getitem(self):
        schema = two_column_schema()
        assert len(schema) == 2
        assert [c.name for c in schema] == ["name", "qty"]
        assert schema[0].name == "name"
        assert schema["qty"].name == "qty"

    def test_index_of(self):
        schema = two_column_schema()
        assert schema.index_of("qty") == 1
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_has_column(self):
        schema = two_column_schema()
        assert schema.has_column("name")
        assert not schema.has_column("other")

    def test_project_orders_and_subsets(self):
        schema = two_column_schema()
        projected = schema.project(["qty"])
        assert projected.names == ("qty",)
        swapped = schema.project(["qty", "name"])
        assert swapped.names == ("qty", "name")

    def test_project_missing_rejected(self):
        with pytest.raises(SchemaError):
            two_column_schema().project(["nope"])

    def test_fixed_row_size(self):
        assert two_column_schema().fixed_row_size == 24
        assert two_column_schema().is_fixed

    def test_variable_schema_has_no_fixed_size(self):
        schema = Schema([Column.of("v", "varchar(50)")])
        assert schema.fixed_row_size is None
        assert not schema.is_fixed

    def test_row_size_fixed(self):
        assert two_column_schema().row_size(("abc", 7)) == 24

    def test_row_size_variable(self):
        schema = Schema([Column.of("v", "varchar(50)"),
                         Column.of("n", "integer")])
        assert schema.row_size(("hello", 1)) == (2 + 5) + 4

    def test_validate_row_arity(self):
        with pytest.raises(SchemaError):
            two_column_schema().validate_row(("abc",))

    def test_validate_row_types(self):
        from repro.errors import EncodingError
        with pytest.raises(EncodingError):
            two_column_schema().validate_row(("abc", "not an int"))

    def test_equality_and_hash(self):
        assert two_column_schema() == two_column_schema()
        assert hash(two_column_schema()) == hash(two_column_schema())
        assert two_column_schema() != single_char_schema(20)

    def test_single_char_schema(self):
        schema = single_char_schema(20)
        assert schema.names == ("a",)
        assert isinstance(schema["a"].dtype, CharType)
        assert schema["a"].dtype.k == 20

    def test_varchar_column_type(self):
        schema = Schema([Column("v", VarCharType(9))])
        assert schema["v"].dtype.max_len == 9
