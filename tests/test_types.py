"""Unit tests for repro.storage.types."""

import pytest

from repro.errors import EncodingError, SchemaError
from repro.storage.types import (BigIntType, CharType, IntegerType,
                                 VarCharType, length_header_bytes,
                                 minimal_int_bytes, parse_type)


class TestLengthHeaderBytes:
    def test_small_widths_need_one_byte(self):
        assert length_header_bytes(1) == 1
        assert length_header_bytes(20) == 1
        assert length_header_bytes(255) == 1

    def test_wide_columns_need_two_bytes(self):
        assert length_header_bytes(256) == 2
        assert length_header_bytes(65535) == 2

    def test_zero_width_still_needs_a_byte(self):
        assert length_header_bytes(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            length_header_bytes(-1)


class TestMinimalIntBytes:
    def test_small_values(self):
        assert minimal_int_bytes(0) == 1
        assert minimal_int_bytes(127) == 1
        assert minimal_int_bytes(-128) == 1

    def test_boundaries(self):
        assert minimal_int_bytes(128) == 2
        assert minimal_int_bytes(-129) == 2
        assert minimal_int_bytes(32767) == 2
        assert minimal_int_bytes(32768) == 3

    def test_large(self):
        assert minimal_int_bytes(2**31 - 1) == 4
        assert minimal_int_bytes(-(2**31)) == 4
        assert minimal_int_bytes(2**62) == 8


class TestCharType:
    def test_paper_example_abc_in_char20(self):
        """Figure 1.a: 'abc' in char(20) pads to 20 bytes uncompressed."""
        dtype = CharType(20)
        encoded = dtype.encode("abc")
        assert len(encoded) == 20
        assert encoded == b"abc" + b" " * 17
        assert dtype.null_suppressed_length("abc") == 3

    def test_roundtrip_strips_trailing_blanks(self):
        dtype = CharType(10)
        assert dtype.decode(dtype.encode("abc  ")) == "abc"

    def test_trailing_blanks_not_significant(self):
        dtype = CharType(10)
        assert dtype.encode("abc") == dtype.encode("abc   ")

    def test_interior_blanks_preserved(self):
        dtype = CharType(12)
        assert dtype.decode(dtype.encode("a b c")) == "a b c"

    def test_full_width_value(self):
        dtype = CharType(5)
        assert dtype.decode(dtype.encode("abcde")) == "abcde"

    def test_empty_string(self):
        dtype = CharType(5)
        assert dtype.decode(dtype.encode("")) == ""
        assert dtype.null_suppressed_length("") == 0

    def test_too_long_rejected(self):
        with pytest.raises(EncodingError):
            CharType(3).encode("abcd")

    def test_overlong_but_blank_padded_accepted(self):
        assert CharType(3).encode("ab    ") == b"ab "

    def test_non_string_rejected(self):
        with pytest.raises(EncodingError):
            CharType(3).encode(123)

    def test_non_latin1_rejected(self):
        with pytest.raises(EncodingError):
            CharType(10).encode("中文")

    def test_latin1_high_bytes_roundtrip(self):
        dtype = CharType(6)
        assert dtype.decode(dtype.encode("caf\xe9")) == "caf\xe9"

    def test_decode_wrong_width_rejected(self):
        with pytest.raises(EncodingError):
            CharType(5).decode(b"abc")

    def test_zero_width_rejected(self):
        with pytest.raises(SchemaError):
            CharType(0)

    def test_fixed_size_and_name(self):
        dtype = CharType(20)
        assert dtype.fixed_size == 20
        assert dtype.is_fixed
        assert dtype.name == "char(20)"
        assert dtype.length_bytes == 1

    def test_equality_and_hash(self):
        assert CharType(20) == CharType(20)
        assert CharType(20) != CharType(21)
        assert hash(CharType(8)) == hash(CharType(8))


class TestVarCharType:
    def test_roundtrip(self):
        dtype = VarCharType(50)
        assert dtype.decode(dtype.encode("hello")) == "hello"

    def test_trailing_blanks_significant(self):
        dtype = VarCharType(50)
        assert dtype.decode(dtype.encode("ab  ")) == "ab  "

    def test_encoded_size(self):
        dtype = VarCharType(50)
        assert dtype.encoded_size("hello") == 2 + 5
        assert len(dtype.encode("hello")) == 7

    def test_variable(self):
        dtype = VarCharType(50)
        assert dtype.fixed_size is None
        assert not dtype.is_fixed

    def test_too_long_rejected(self):
        with pytest.raises(EncodingError):
            VarCharType(3).encode("abcd")

    def test_bad_max_rejected(self):
        with pytest.raises(SchemaError):
            VarCharType(0)
        with pytest.raises(SchemaError):
            VarCharType(70000)

    def test_length_mismatch_detected(self):
        dtype = VarCharType(50)
        with pytest.raises(EncodingError):
            dtype.decode(b"\x00\x05ab")

    def test_null_suppressed_length_strips_trailing(self):
        assert VarCharType(10).null_suppressed_length("ab  ") == 2


class TestIntegerTypes:
    @pytest.mark.parametrize("dtype_cls,size", [(IntegerType, 4),
                                                (BigIntType, 8)])
    def test_roundtrip(self, dtype_cls, size):
        dtype = dtype_cls()
        for value in (0, 1, -1, 42, -42, 2**(8 * size - 1) - 1,
                      -(2**(8 * size - 1))):
            assert dtype.decode(dtype.encode(value)) == value
            assert len(dtype.encode(value)) == size

    def test_encoding_preserves_order(self):
        dtype = IntegerType()
        values = [-(2**31), -100, -1, 0, 1, 7, 100, 2**31 - 1]
        encodings = [dtype.encode(v) for v in values]
        assert encodings == sorted(encodings)

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            IntegerType().encode(2**31)
        with pytest.raises(EncodingError):
            IntegerType().encode(-(2**31) - 1)

    def test_bool_rejected(self):
        with pytest.raises(EncodingError):
            IntegerType().encode(True)

    def test_non_int_rejected(self):
        with pytest.raises(EncodingError):
            BigIntType().encode("5")

    def test_null_suppressed_length(self):
        assert IntegerType().null_suppressed_length(7) == 1
        assert BigIntType().null_suppressed_length(7) == 1
        assert IntegerType().null_suppressed_length(300) == 2

    def test_decode_wrong_width(self):
        with pytest.raises(EncodingError):
            IntegerType().decode(b"\x00\x00\x01")


class TestParseType:
    def test_char(self):
        assert parse_type("char(20)") == CharType(20)
        assert parse_type(" CHAR( 8 )".replace(" ", "")) == CharType(8)

    def test_varchar(self):
        assert parse_type("varchar(100)") == VarCharType(100)

    def test_integers(self):
        assert parse_type("integer") == IntegerType()
        assert parse_type("int") == IntegerType()
        assert parse_type("bigint") == BigIntType()

    def test_case_insensitive(self):
        assert parse_type("Char(5)") == CharType(5)
        assert parse_type("BIGINT") == BigIntType()

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            parse_type("decimal(10,2)")
        with pytest.raises(SchemaError):
            parse_type("char(x)")
