"""Integration: the closed-form models equal the storage engine, byte
for byte, under payload accounting.

This is the load-bearing property of the whole reproduction: theorems
are verified against the histogram models, and these tests transfer
those verifications to the real engine.
"""

import pytest

from repro.storage.index import Index, IndexKind
from repro.storage.schema import single_char_schema
from repro.compression.dictionary import DictionaryCompression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.compression.rle import RunLengthEncoding
from repro.core.cf_models import ColumnHistogram
from repro.core.samplecf import SampleCF, true_cf_table
from repro.workloads.generators import histogram_to_table, make_histogram

PAGE = 1024


def build_cases() -> list:
    """Histograms covering both d regimes, skew, and length variety."""
    return [
        ("small_d_uniform", make_histogram(4000, 8, 20,
                                           distribution="uniform", seed=1)),
        ("small_d_zipf", make_histogram(4000, 40, 20, seed=2)),
        ("large_d", make_histogram(3000, 2400, 20,
                                   distribution="singleton_heavy", seed=3)),
        ("wide_column", make_histogram(2000, 100, 64, min_len=3,
                                       max_len=60, seed=4)),
    ]


ALGORITHMS = [
    NullSuppression(),
    NullSuppression(mode="runs"),
    DictionaryCompression(),
    GlobalDictionaryCompression(),
    RunLengthEncoding(),
]


@pytest.mark.parametrize("case_name,histogram", build_cases(),
                         ids=[name for name, _ in build_cases()])
@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=[a.name for a in ALGORITHMS])
def test_exact_payload_equality(case_name, histogram, algorithm):
    """Storage-path CF == closed-form CF, exactly."""
    table = histogram_to_table(histogram, page_size=PAGE, seed=7)
    storage_cf = true_cf_table(table, ["a"], algorithm, page_size=PAGE)
    model_cf = algorithm.cf_from_histogram(histogram, page_size=PAGE)
    assert storage_cf == pytest.approx(model_cf, abs=1e-12)


@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=[a.name for a in ALGORITHMS])
def test_samplecf_paths_agree_at_full_fraction(algorithm):
    """f=1 without replacement: both estimator paths return the truth."""
    from repro.sampling.row_samplers import WithoutReplacementSampler

    histogram = make_histogram(1500, 60, 20, seed=11)
    table = histogram_to_table(histogram, page_size=PAGE, seed=12)
    estimator = SampleCF(algorithm,
                         sampler=WithoutReplacementSampler(),
                         page_size=PAGE)
    from_table = estimator.estimate_table(table, 1.0, ["a"], seed=1)
    from_hist = estimator.estimate_histogram(histogram, 1.0, seed=1)
    assert from_table.estimate == pytest.approx(from_hist.estimate,
                                                abs=1e-12)


def test_samplecf_storage_and_histogram_distributions_match():
    """At f<1 the two paths are random but share mean and spread."""
    import numpy as np

    histogram = make_histogram(3000, 50, 20, seed=21)
    table = histogram_to_table(histogram, page_size=PAGE, seed=22)
    estimator = SampleCF(NullSuppression(), page_size=PAGE)
    storage = np.array([
        estimator.estimate_table(table, 0.05, ["a"], seed=s).estimate
        for s in range(60)])
    hist = np.array([
        estimator.estimate_histogram(histogram, 0.05, seed=1000 + s
                                     ).estimate
        for s in range(60)])
    assert storage.mean() == pytest.approx(hist.mean(), abs=0.01)
    assert storage.std() == pytest.approx(hist.std(), rel=0.8, abs=0.01)


def test_paged_dictionary_model_tracks_leaf_boundaries():
    """Pg(i) in the model equals distinct-per-leaf in the real index."""
    histogram = make_histogram(2000, 12, 20, seed=31)
    table = histogram_to_table(histogram, page_size=PAGE, seed=32)
    index = Index("ix", single_char_schema(20), ["a"],
                  kind=IndexKind.CLUSTERED, page_size=PAGE)
    index.build([(row, None) for row in table.rows()])
    total_entries = 0
    for page in index.leaf_pages():
        distinct_on_page = len({bytes(record)
                                for record in page.records()})
        total_entries += distinct_on_page
    from repro.core.cf_models import layout_rows_per_page, pages_spanned

    rows_per_page = layout_rows_per_page(histogram, page_size=PAGE)
    spans = pages_spanned(histogram, rows_per_page)
    assert total_entries == int(spans.sum())
