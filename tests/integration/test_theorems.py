"""Integration: the paper's theorems hold empirically.

These are the statistical acceptance tests of the reproduction — scaled
versions of the benchmark experiments, sized to run in seconds.
"""

import math

import numpy as np
import pytest

from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.null_suppression import NullSuppression
from repro.core.bounds import (dict_large_d_bound, dict_small_d_bound,
                               ns_stddev_bound)
from repro.core.cf_models import ns_cf, global_dictionary_cf
from repro.core.metrics import ErrorSummary, ratio_error
from repro.core.samplecf import SampleCF
from repro.experiments.runner import run_trials
from repro.workloads.generators import make_histogram

K = 20
P = 2


class TestTheorem1:
    """CF'_NS is unbiased; sigma <= (1/2) sqrt(1/(f n))."""

    @pytest.mark.parametrize("distribution,d", [
        ("uniform", 50), ("zipf", 500), ("singleton_heavy", 20_000)])
    def test_unbiased_and_bounded(self, distribution, d):
        histogram = make_histogram(50_000, d, K,
                                   distribution=distribution, seed=3)
        truth = ns_cf(histogram)
        estimator = SampleCF(NullSuppression())
        f = 0.01
        estimates = run_trials(
            lambda rng: estimator.estimate_histogram(
                histogram, f, seed=rng).estimate,
            trials=200, seed=7)
        summary = ErrorSummary.from_estimates(truth, estimates)
        bound = ns_stddev_bound(n=histogram.n, f=f)
        # Unbiased: |bias| within 4 standard errors of the mean.
        standard_error = bound / math.sqrt(summary.trials)
        assert abs(summary.bias) <= 4 * standard_error
        # Theorem 1: measured sigma below the worst-case bound.
        assert summary.std <= bound

    def test_bound_scales_with_fraction(self):
        histogram = make_histogram(20_000, 100, K, seed=5)
        truth = ns_cf(histogram)
        estimator = SampleCF(NullSuppression())
        stds = []
        for f in (0.005, 0.05):
            estimates = run_trials(
                lambda rng: estimator.estimate_histogram(
                    histogram, f, seed=rng).estimate,
                trials=150, seed=11)
            summary = ErrorSummary.from_estimates(truth, estimates)
            assert summary.std <= ns_stddev_bound(n=histogram.n, f=f)
            stds.append(summary.std)
        assert stds[1] < stds[0]  # larger samples, tighter estimates


class TestTheorem2:
    """Small d: expected ratio error approaches 1 as n grows."""

    def test_ratio_error_shrinks_with_n(self):
        """Convergence needs d*k/(r*p) -> 0: with d = sqrt(n) and
        f = 1% that means n in the millions — cheap on the histogram
        path."""
        f = 0.01
        estimator = SampleCF(GlobalDictionaryCompression(pointer_bytes=P))
        mean_errors = []
        for n in (100_000, 2_500_000):
            d = max(2, int(math.isqrt(n)))
            histogram = make_histogram(n, d, K, seed=42)
            truth = global_dictionary_cf(histogram, pointer_bytes=P)
            estimates = run_trials(
                lambda rng: estimator.estimate_histogram(
                    histogram, f, seed=rng).estimate,
                trials=60, seed=13)
            errors = np.maximum(truth / estimates, estimates / truth)
            bound = dict_small_d_bound(n, d, K, P, f).bound
            assert errors.max() <= bound + 1e-9
            mean_errors.append(errors.mean())
        assert mean_errors[1] < mean_errors[0]
        assert mean_errors[1] < 1.9


class TestTheorem3:
    """Large d (alpha n): expected ratio error bounded by a constant."""

    @pytest.mark.parametrize("alpha", [0.25, 0.75])
    def test_constant_bound_across_n(self, alpha):
        f = 0.02
        estimator = SampleCF(GlobalDictionaryCompression(pointer_bytes=P))
        bound = dict_large_d_bound(alpha, f, K, P).bound
        for n in (20_000, 80_000):
            d = int(alpha * n)
            histogram = make_histogram(
                n, d, K, distribution="singleton_heavy", seed=n + 1)
            truth = global_dictionary_cf(histogram, pointer_bytes=P)
            estimates = run_trials(
                lambda rng: estimator.estimate_histogram(
                    histogram, f, seed=rng).estimate,
                trials=40, seed=17)
            errors = np.maximum(truth / estimates, estimates / truth)
            assert errors.mean() <= bound

    def test_error_does_not_grow_with_n(self):
        alpha, f = 0.5, 0.02
        estimator = SampleCF(GlobalDictionaryCompression(pointer_bytes=P))
        means = []
        for n in (10_000, 160_000):
            histogram = make_histogram(
                n, int(alpha * n), K, distribution="singleton_heavy",
                seed=n)
            truth = global_dictionary_cf(histogram, pointer_bytes=P)
            estimates = run_trials(
                lambda rng: estimator.estimate_histogram(
                    histogram, f, seed=rng).estimate,
                trials=40, seed=19)
            errors = np.maximum(truth / estimates, estimates / truth)
            means.append(errors.mean())
        # 16x more rows must not inflate the error materially.
        assert means[1] <= means[0] * 1.25


class TestDictionaryBias:
    """Table II: the dictionary estimator is biased (unlike NS)."""

    def test_bias_direction_uniform_moderate_counts(self):
        """With d = n/10 (each value ~10 copies) and f = 1%, almost
        every sampled row contributes a *new* distinct value, so d'/r
        vastly overshoots d/n — the textbook biased case."""
        n, d, f = 40_000, 4_000, 0.01
        histogram = make_histogram(n, d, K, distribution="uniform",
                                   seed=23)
        truth = global_dictionary_cf(histogram, pointer_bytes=P)
        estimator = SampleCF(GlobalDictionaryCompression(pointer_bytes=P))
        estimates = run_trials(
            lambda rng: estimator.estimate_histogram(
                histogram, f, seed=rng).estimate,
            trials=100, seed=29)
        summary = ErrorSummary.from_estimates(truth, estimates)
        standard_error = max(summary.std / math.sqrt(100), 1e-9)
        assert summary.bias > 5 * standard_error  # clearly biased (up)

    def test_ns_not_biased_same_workload(self):
        n, d, f = 40_000, 30_000, 0.01
        histogram = make_histogram(n, d, K,
                                   distribution="singleton_heavy",
                                   seed=23)
        truth = ns_cf(histogram)
        estimator = SampleCF(NullSuppression())
        estimates = run_trials(
            lambda rng: estimator.estimate_histogram(
                histogram, f, seed=rng).estimate,
            trials=100, seed=31)
        summary = ErrorSummary.from_estimates(truth, estimates)
        standard_error = summary.std / math.sqrt(100)
        assert abs(summary.bias) <= 4 * max(standard_error, 1e-9)
