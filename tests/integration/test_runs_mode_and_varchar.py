"""Integration: the run-based NS variant and VARCHAR columns.

The run variant is Figure 1.a's general form — it must beat trailing NS
exactly on the zero-padded-identifier workloads that motivate it, agree
with its closed form on the engine, and stay estimable by SampleCF.
VARCHAR columns exercise the variable-width record paths end to end.
"""

import pytest

from repro.storage.index import IndexKind
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import VarCharType
from repro.compression.null_suppression import NullSuppression
from repro.core.cf_models import ColumnHistogram, ns_cf
from repro.core.samplecf import SampleCF, true_cf_table
from repro.workloads.generators import histogram_to_table
from repro.workloads.scenarios import get_scenario

PAGE = 1024


class TestRunsModeOnZeroPaddedIds:
    @pytest.fixture(scope="class")
    def histogram(self):
        return get_scenario("zero_padded_ids").build(5000, seed=3)

    def test_runs_beats_trailing(self, histogram):
        trailing = ns_cf(histogram, mode="trailing")
        runs = ns_cf(histogram, mode="runs")
        assert runs < trailing
        # Zero-padded ids barely shrink under trailing NS.
        assert trailing > 0.6
        assert runs < 0.5

    def test_model_equals_engine_runs_mode(self, histogram):
        table = histogram_to_table(histogram, page_size=PAGE, seed=4)
        algorithm = NullSuppression(mode="runs")
        engine = true_cf_table(table, ["a"], algorithm, page_size=PAGE)
        model = ns_cf(histogram, mode="runs")
        assert engine == pytest.approx(model, abs=1e-12)

    def test_samplecf_estimates_runs_mode(self, histogram):
        estimator = SampleCF(NullSuppression(mode="runs"))
        truth = ns_cf(histogram, mode="runs")
        estimate = estimator.estimate_histogram(histogram, 0.05, seed=5)
        assert abs(estimate.estimate - truth) < 0.05

    def test_theorem1_bound_applies_to_runs_mode(self, histogram):
        """Theorem 1's argument only needs bounded per-tuple fractions,
        so the run variant obeys the same sigma bound."""
        import numpy as np

        from repro.core.bounds import ns_stddev_bound

        estimator = SampleCF(NullSuppression(mode="runs"))
        estimates = np.array([
            estimator.estimate_histogram(histogram, 0.02,
                                         seed=s).estimate
            for s in range(100)])
        assert estimates.std(ddof=1) <= \
            ns_stddev_bound(n=histogram.n, f=0.02)


class TestVarCharEndToEnd:
    @pytest.fixture(scope="class")
    def table(self):
        schema = Schema([Column("note", VarCharType(40))])
        values = [f"note {i % 37}: {'x' * (i % 37 % 23)}"
                  for i in range(800)]
        return Table.from_rows("notes", schema,
                               [(v,) for v in values], page_size=PAGE)

    def test_variable_records_roundtrip_through_heap(self, table):
        rows = list(table.rows())
        assert len(rows) == 800
        assert rows[5] == ("note 5: xxxxx",)

    def test_index_and_compress(self, table):
        index = table.create_index("ix", ["note"],
                                   kind=IndexKind.CLUSTERED)
        index.validate()
        result = index.compress(NullSuppression())
        # VARCHAR is already minimal: NS is the identity, CF == 1.
        assert result.compression_fraction == pytest.approx(1.0)

    def test_dictionary_still_compresses_varchar(self, table):
        from repro.compression.dictionary import DictionaryCompression

        truth = true_cf_table(table, ["note"], DictionaryCompression(),
                              page_size=PAGE)
        assert truth < 1.0  # 37 distinct notes repeat heavily

    def test_histogram_model_supports_varchar(self):
        dtype = VarCharType(30)
        histogram = ColumnHistogram(dtype, ["ab", "a much longer note"],
                                    [10, 5])
        value = ns_cf(histogram)
        assert value == pytest.approx(1.0)  # identity for VARCHAR

    def test_samplecf_on_varchar_histogram(self):
        dtype = VarCharType(30)
        histogram = ColumnHistogram(
            dtype, [f"v{i}" + "y" * (i % 9) for i in range(40)],
            [25] * 40)
        estimator = SampleCF(NullSuppression())
        estimate = estimator.estimate_histogram(histogram, 0.2, seed=9)
        assert estimate.estimate == pytest.approx(1.0)
