"""Integration: full workflows a downstream user would run."""

import pytest

from repro import (BlockSampler, IndexKind, NullSuppression, Query,
                   SampleCF, TableStats, get_algorithm, list_algorithms,
                   make_table, ratio_error, sample_cf, true_cf_table)
from repro.advisor import (CostModel, enumerate_candidates, plan_capacity,
                           select_indexes)
from repro.workloads.generators import make_multicolumn_table

PAGE = 1024


class TestFigure2Workflow:
    """The paper's pseudocode, run literally end to end."""

    def test_every_algorithm_estimates_every_layout(self):
        """Every algorithm runs through both index kinds.

        Accuracy at this tiny sample (r = 150) is only asserted loosely:
        dictionary-family and RLE estimators overestimate when ``d`` is
        comparable to ``r`` — exactly the hardness the paper traces to
        distinct-value estimation. Tight accuracy is asserted in the
        theorem tests, which run in the regimes the theorems cover.
        """
        table = make_table(n=3000, d=80, k=20, page_size=PAGE, seed=41)
        for name in list_algorithms():
            algorithm = get_algorithm(name)
            for kind in (IndexKind.CLUSTERED, IndexKind.NONCLUSTERED):
                estimator = SampleCF(algorithm, page_size=PAGE)
                estimate = estimator.estimate_table(
                    table, 0.05, ["a"], kind=kind, seed=43)
                truth = true_cf_table(table, ["a"], algorithm, kind=kind,
                                      page_size=PAGE)
                assert ratio_error(truth, estimate.estimate) < 10.0, \
                    (name, kind)
        # Null suppression is tight even at r = 150 (Theorem 1).
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        estimate = estimator.estimate_table(table, 0.05, ["a"], seed=43)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert ratio_error(truth, estimate.estimate) < 1.2

    def test_index_sampling_shortcut(self):
        table = make_table(n=3000, d=80, k=20, page_size=PAGE, seed=47)
        index = table.create_index("ix", ["a"], kind=IndexKind.CLUSTERED)
        estimator = SampleCF(NullSuppression(), page_size=PAGE)
        from_index = estimator.estimate_index(index, 0.1, seed=3)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert ratio_error(truth, from_index.estimate) < 1.2

    def test_block_sampling_workflow(self):
        table = make_table(n=3000, d=80, k=20, page_size=PAGE, seed=53,
                           order="shuffled")
        estimator = SampleCF(NullSuppression(), sampler=BlockSampler(),
                             page_size=PAGE)
        estimate = estimator.estimate_table(table, 0.05, ["a"], seed=3)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        assert ratio_error(truth, estimate.estimate) < 1.3

    def test_one_call_convenience(self):
        table = make_table(n=1000, d=50, k=20, page_size=PAGE, seed=59)
        value = sample_cf(table, 0.1, ["a"], "null_suppression", seed=61)
        assert 0 < value < 1.5


class TestAdvisorWorkflow:
    def test_full_design_loop(self):
        orders = make_multicolumn_table(
            "orders", 3000, [("status", 10, 5), ("customer", 24, 300)],
            page_size=PAGE, seed=67)
        tables = {"orders": orders}
        queries = [
            Query("by_status", "orders", ("status",), selectivity=0.3,
                  weight=8),
            Query("by_customer", "orders", ("customer",),
                  selectivity=0.02, weight=4),
        ]
        candidates = enumerate_candidates(tables, queries, fraction=0.05,
                                          seed=71)
        stats = {"orders": TableStats("orders", orders.num_rows,
                                      orders.heap.num_pages)}
        result = select_indexes(candidates, queries, stats,
                                storage_bound_bytes=120_000,
                                model=CostModel(page_size=PAGE))
        assert result.cost_after < result.cost_before
        assert result.bytes_used <= 120_000

    def test_estimated_vs_exact_decisions_agree(self):
        """SampleCF estimates should lead to the same design as exact
        sizes on this workload — the motivating property."""
        orders = make_multicolumn_table(
            "orders", 2000, [("status", 10, 5), ("customer", 24, 200)],
            page_size=PAGE, seed=73)
        tables = {"orders": orders}
        queries = [
            Query("q1", "orders", ("status",), selectivity=0.3, weight=8),
            Query("q2", "orders", ("customer",), selectivity=0.02,
                  weight=4),
        ]
        stats = {"orders": TableStats("orders", orders.num_rows,
                                      orders.heap.num_pages)}
        bound = 90_000
        chosen = {}
        for source in ("samplecf", "exact"):
            candidates = enumerate_candidates(
                tables, queries, fraction=0.1, size_source=source,
                seed=79)
            result = select_indexes(candidates, queries, stats, bound,
                                    CostModel(page_size=PAGE))
            chosen[source] = {(c.table, c.key_columns, c.compressed)
                              for c in result.chosen}
        assert chosen["samplecf"] == chosen["exact"]


class TestCapacityWorkflow:
    def test_plan_tracks_truth(self):
        table = make_table(n=4000, d=100, k=40, page_size=PAGE, seed=83)
        plan = plan_capacity([table], fraction=0.05, seed=89)
        truth = true_cf_table(table, ["a"], NullSuppression(),
                              page_size=PAGE)
        entry = plan.entries[0]
        assert ratio_error(truth, entry.estimated_cf) < 1.2
        assert entry.interval.contains(truth)
