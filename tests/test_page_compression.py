"""Unit tests for the composite PAGE compression."""

import pytest

from repro.errors import CompressionError
from repro.storage.record import encode_record
from repro.storage.schema import Column, Schema, single_char_schema
from repro.storage.types import IntegerType
from repro.compression.page_compression import PageCompression


def char_records(values: list[str], k: int = 24) -> tuple:
    schema = single_char_schema(k)
    return schema, [encode_record(schema, (v,)) for v in values]


class TestPageCompression:
    def test_payload_formula(self):
        values = ["SKU-a", "SKU-b", "SKU-a", "SKU-a"]
        schema, records = char_records(values)
        block = PageCompression().compress(records, schema)
        # Prefix 'SKU-' stored once (1+4); dictionary of remainders
        # {'a','b'} NS'd (1+1 each); 4 pointers of 2 bytes.
        assert block.payload_size == (1 + 4) + 2 * (1 + 1) + 4 * 2

    def test_roundtrip(self):
        values = ["SKU-aa", "SKU-bb", "SKU-aa", "SKU-", "SKU-c c"]
        schema, records = char_records(values)
        algorithm = PageCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_roundtrip_no_shared_prefix(self):
        values = ["alpha", "beta", "alpha", ""]
        schema, records = char_records(values)
        algorithm = PageCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_beats_plain_dictionary_on_prefixed_data(self):
        from repro.compression.dictionary import DictionaryCompression

        values = [f"WAREHOUSE-EU-{i:04d}" for i in range(40)]
        schema, records = char_records(values)
        composite = PageCompression().compress(records, schema)
        plain = DictionaryCompression(
            entry_storage="null_suppressed").compress(records, schema)
        assert composite.payload_size < plain.payload_size

    def test_non_char_column_dict_only(self):
        schema = Schema([Column("n", IntegerType())])
        records = [encode_record(schema, (v,)) for v in (5, 5, 9, -1)]
        algorithm = PageCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_mixed_schema_roundtrip(self):
        schema = Schema([Column.of("s", "char(16)"),
                         Column.of("n", "integer")])
        rows = [("pre-x", 1), ("pre-y", 1), ("pre-x", 2**20)]
        records = [encode_record(schema, row) for row in rows]
        algorithm = PageCompression()
        block = algorithm.compress(records, schema)
        assert algorithm.decompress(block, schema) == records

    def test_tracker_matches_compress(self):
        values = ["pre-a", "pre-bb", "pre-a", "zz", "pre-c"]
        schema, records = char_records(values)
        algorithm = PageCompression()
        tracker = algorithm.make_tracker(schema)
        for record in records:
            tracker.add([record])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_tracker_mixed_schema(self):
        schema = Schema([Column.of("s", "char(10)"),
                         Column.of("n", "integer")])
        rows = [("aa-x", 5), ("aa-y", 5), ("aa-x", 900)]
        records = [encode_record(schema, row) for row in rows]
        algorithm = PageCompression()
        tracker = algorithm.make_tracker(schema)
        slices = [algorithm.columnize([record], schema) for record in records]
        for record_slices in slices:
            tracker.add([column[0] for column in record_slices])
        block = algorithm.compress(records, schema)
        assert tracker.size == block.payload_size

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            PageCompression().compress([], single_char_schema(5))

    def test_pointer_overflow_rejected(self):
        values = [f"p{i:04d}" for i in range(300)]
        schema, records = char_records(values)
        with pytest.raises(CompressionError):
            PageCompression(pointer_bytes=1).compress(records, schema)
