"""The lint gate: ``repro lint`` must stay clean on the shipped tree.

This is the pytest leg of the CI contract — any new violation of the
determinism/picklability/lock-discipline invariants fails the suite,
not just the standalone CLI run. Suppressions are allowed (and
counted) but every one must carry a rationale and suppress something,
or RPL000 turns it into a finding here.
"""

from repro.analysis import lint_project, render_findings


def test_shipped_tree_lints_clean():
    result = lint_project()
    assert result.checked_files > 50  # the whole package, not a subset
    assert result.ok, "\n" + render_findings(result.findings, "text",
                                             result.checked_files)


def test_intentional_exceptions_are_suppressed_not_silent():
    # The documented entropy/pickle exceptions (None-seed contract,
    # parent-side dispatch lock) must flow through inline suppressions
    # rather than rule carve-outs, so the rationale lives at the site.
    result = lint_project()
    by_code = {}
    for finding in result.suppressed:
        by_code.setdefault(finding.code, []).append(finding)
    assert "RPL001" in by_code  # None-seed entropy points
    assert "RPL003" in by_code  # _DispatchState parent-side lock
    assert len(result.suppressed) >= 5
