"""Unit tests for repro.storage.index."""

import pytest

from repro.errors import CompressionError, IndexError_
from repro.storage.index import Index, IndexKind, RID_COLUMN
from repro.storage.rid import RID
from repro.storage.schema import Column, Schema, single_char_schema
from repro.compression.null_suppression import NullSuppression
from repro.compression.global_dictionary import GlobalDictionaryCompression
from repro.compression.dictionary import DictionaryCompression

PAGE = 256


def rows_with_rids(values: list[str]) -> list:
    return [((value,), RID(0, slot)) for slot, value in enumerate(values)]


def build_clustered(values: list[str], k: int = 20) -> Index:
    index = Index("ix", single_char_schema(k), ["a"],
                  kind=IndexKind.CLUSTERED, page_size=PAGE)
    return index.build(rows_with_rids(values))


def build_nonclustered(values: list[str], k: int = 20) -> Index:
    index = Index("ix", single_char_schema(k), ["a"],
                  kind=IndexKind.NONCLUSTERED, page_size=PAGE)
    return index.build(rows_with_rids(values))


class TestIndexConstruction:
    def test_requires_key_columns(self):
        with pytest.raises(IndexError_):
            Index("ix", single_char_schema(8), [])

    def test_clustered_leaf_schema_is_table_schema(self):
        index = Index("ix", single_char_schema(8), ["a"])
        assert index.leaf_schema == index.table_schema

    def test_nonclustered_leaf_schema_appends_rid(self):
        index = Index("ix", single_char_schema(8), ["a"],
                      kind=IndexKind.NONCLUSTERED)
        assert index.leaf_schema.names == ("a", RID_COLUMN)

    def test_multi_column_key(self):
        schema = Schema([Column.of("a", "char(6)"),
                         Column.of("b", "integer")])
        index = Index("ix", schema, ["b", "a"], page_size=PAGE)
        index.build([(("x", 2), None), (("y", 1), None)])
        assert [entry for entry in index.range_scan()] == [
            ("y", 1), ("x", 2)]

    def test_build_from_rows_clustered_only(self):
        index = Index("ix", single_char_schema(8), ["a"],
                      kind=IndexKind.NONCLUSTERED)
        with pytest.raises(IndexError_):
            index.build_from_rows([("x",)])

    def test_nonclustered_requires_rids(self):
        index = Index("ix", single_char_schema(8), ["a"],
                      kind=IndexKind.NONCLUSTERED)
        with pytest.raises(IndexError_):
            index.build([(("x",), None)])


class TestLookup:
    def test_clustered_search_returns_rows(self):
        index = build_clustered(["b", "a", "c", "a"])
        assert index.search(("a",)) == [("a",), ("a",)]

    def test_nonclustered_search_rids(self):
        index = build_nonclustered(["b", "a", "c", "a"])
        rids = index.search_rids(("a",))
        assert sorted(rids) == [RID(0, 1), RID(0, 3)]

    def test_clustered_search_rids_rejected(self):
        index = build_clustered(["a"])
        with pytest.raises(IndexError_):
            index.search_rids(("a",))

    def test_range_scan_sorted(self):
        index = build_clustered(["d", "b", "a", "c"])
        assert [row[0] for row in index.range_scan()] == list("abcd")

    def test_insert_after_build(self):
        index = build_clustered(["a", "c"])
        index.insert(("b",))
        assert [row[0] for row in index.range_scan()] == list("abc")
        index.validate()

    def test_leaf_record_key(self):
        clustered = build_clustered(["x"])
        record = next(clustered.leaf_records())
        assert clustered.leaf_record_key(record) == ("x",)
        nonclustered = build_nonclustered(["x"])
        record = next(nonclustered.leaf_records())
        assert nonclustered.leaf_record_key(record) == ("x",)


class TestSizes:
    def test_clustered_payload_is_rows_times_k(self):
        index = build_clustered(["val%d" % i for i in range(100)], k=20)
        assert index.uncompressed_size("payload") == 100 * 20

    def test_nonclustered_payload_adds_rid_bytes(self):
        index = build_nonclustered(["val%d" % i for i in range(100)], k=20)
        assert index.uncompressed_size("payload") == 100 * (20 + 8)

    def test_physical_is_pages_times_size(self):
        index = build_clustered(["v%d" % i for i in range(100)])
        size = index.size()
        assert size.physical_bytes == size.leaf_pages * PAGE
        assert size.entries == 100

    def test_unknown_accounting_rejected(self):
        index = build_clustered(["a"])
        with pytest.raises(CompressionError):
            index.uncompressed_size("weird")


class TestCompress:
    def test_empty_index_rejected(self):
        index = Index("ix", single_char_schema(8), ["a"], page_size=PAGE)
        with pytest.raises(CompressionError):
            index.compress(NullSuppression())

    def test_payload_cf_below_one_for_padded_values(self):
        index = build_clustered(["ab"] * 50 + ["cdef"] * 50)
        result = index.compress(NullSuppression())
        assert 0 < result.compression_fraction < 0.5
        assert result.row_count == 100
        assert result.accounting == "payload"

    def test_physical_in_place_keeps_pages(self):
        index = build_clustered(["ab"] * 200)
        result = index.compress(NullSuppression(), accounting="physical")
        assert result.pages_before == result.pages_after
        assert result.compression_fraction == 1.0

    def test_physical_repack_frees_pages(self):
        index = build_clustered(["ab"] * 200)
        result = index.compress(NullSuppression(), accounting="physical",
                                repack_pages=True)
        assert result.pages_after < result.pages_before
        assert result.compression_fraction < 1.0

    def test_index_scope_algorithm(self):
        index = build_clustered(["a", "b"] * 100)
        result = index.compress(GlobalDictionaryCompression())
        # 2 entries * 20 bytes + 200 pointers * 2 bytes over 200*20.
        assert result.compressed_bytes == 2 * 20 + 200 * 2
        assert result.uncompressed_bytes == 200 * 20

    def test_page_scope_payload_sums_leaf_blocks(self):
        index = build_clustered([f"v{i % 7}" for i in range(150)])
        result = index.compress(DictionaryCompression())
        manual = 0
        for page in index.leaf_pages():
            block = DictionaryCompression().compress(
                list(page.records()), index.leaf_schema)
            manual += block.payload_size
        assert result.compressed_bytes == manual

    def test_repack_payload_matches_tracker(self):
        index = build_clustered([f"v{i % 5}" for i in range(200)])
        inplace = index.compress(DictionaryCompression(), repack_pages=False)
        repacked = index.compress(DictionaryCompression(), repack_pages=True)
        # Repacking merges pages, so fewer dictionary copies are stored.
        assert repacked.compressed_bytes <= inplace.compressed_bytes

    def test_validate_passes(self):
        index = build_clustered([f"w{i}" for i in range(300)])
        index.validate()
