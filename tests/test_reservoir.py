"""Unit tests for repro.sampling.reservoir."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.reservoir import (ReservoirSampler, StreamingReservoir,
                                      reservoir_sample_r,
                                      reservoir_sample_x)
from repro.sampling.rng import make_rng


class TestAlgorithmR:
    def test_sample_size(self):
        sample = reservoir_sample_r(range(1000), 10, make_rng(0))
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_short_stream_returns_all(self):
        assert sorted(reservoir_sample_r(range(5), 10, make_rng(0))) == \
            list(range(5))

    def test_empty_stream_rejected(self):
        with pytest.raises(SamplingError):
            reservoir_sample_r([], 5, make_rng(0))

    def test_bad_size_rejected(self):
        with pytest.raises(SamplingError):
            reservoir_sample_r(range(10), 0, make_rng(0))

    def test_uniformity(self):
        """Every element should be selected ~equally often."""
        hits = np.zeros(20)
        trials = 3000
        rng = make_rng(7)
        for _ in range(trials):
            for element in reservoir_sample_r(range(20), 5, rng):
                hits[element] += 1
        expected = trials * 5 / 20
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))


class TestAlgorithmX:
    def test_sample_size(self):
        sample = reservoir_sample_x(range(1000), 10, make_rng(0))
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_short_stream_returns_all(self):
        assert sorted(reservoir_sample_x(range(3), 10, make_rng(0))) == \
            [0, 1, 2]

    def test_uniformity(self):
        hits = np.zeros(20)
        trials = 3000
        rng = make_rng(11)
        for _ in range(trials):
            for element in reservoir_sample_x(range(20), 5, rng):
                hits[element] += 1
        expected = trials * 5 / 20
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))

    def test_agrees_with_r_in_distribution(self):
        """Means of sampled ids should match between variants."""
        rng = make_rng(3)
        means_r = [np.mean(reservoir_sample_r(range(500), 20, rng))
                   for _ in range(200)]
        means_x = [np.mean(reservoir_sample_x(range(500), 20, rng))
                   for _ in range(200)]
        assert abs(np.mean(means_r) - np.mean(means_x)) < 15


class TestReservoirSampler:
    def test_positions(self):
        sampler = ReservoirSampler()
        positions = sampler.sample_positions(100, 10, make_rng(0))
        assert len(set(positions.tolist())) == 10

    def test_variant_x(self):
        sampler = ReservoirSampler(variant="x")
        positions = sampler.sample_positions(100, 10, make_rng(0))
        assert len(positions) == 10

    def test_bad_variant(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(variant="z")

    def test_histogram_path(self):
        from repro.core.cf_models import ColumnHistogram
        from repro.storage.types import CharType

        histogram = ColumnHistogram(CharType(4), ["a", "b"], [50, 50])
        sample = ReservoirSampler().sample_histogram(histogram, 30,
                                                     make_rng(0))
        assert sample.n == 30


class TestStreamingReservoir:
    def test_offer_and_sample(self):
        reservoir = StreamingReservoir(r=5, seed=1)
        for value in range(100):
            reservoir.offer(value)
        assert reservoir.seen == 100
        sample = reservoir.sample()
        assert len(sample) == 5
        assert all(0 <= value < 100 for value in sample)

    def test_fewer_than_r(self):
        reservoir = StreamingReservoir(r=10, seed=1)
        reservoir.offer("only")
        assert reservoir.sample() == ["only"]

    def test_empty_rejected(self):
        reservoir = StreamingReservoir(r=3)
        with pytest.raises(SamplingError):
            reservoir.sample()

    def test_bad_size(self):
        with pytest.raises(SamplingError):
            StreamingReservoir(r=0)

    def test_sample_returns_copy(self):
        reservoir = StreamingReservoir(r=2, seed=0)
        reservoir.offer(1)
        reservoir.offer(2)
        sample = reservoir.sample()
        sample.append(99)
        assert len(reservoir.sample()) == 2
