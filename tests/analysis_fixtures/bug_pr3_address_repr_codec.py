# repro-lint-fixture: expect=RPL002
# repro-lint-fixture: identity-bases=CompressionAlgorithm
"""The PR 3 ``_DictionaryCodec`` bug, reintroduced in isolation.

The engine reprs an algorithm's ``vars()`` into its canonical identity
(``algorithm_key``), which feeds batch dedup and persistent store keys.
A held helper object without ``__repr__`` contributes
``<...object at 0x7f...>`` — a fresh memory address per process — so
equal configurations never dedup and the warm-start store never hits.
"""


class _DictionaryCodec:
    """No ``__repr__``: the default repr embeds a memory address."""

    def __init__(self, width: int) -> None:
        self.width = width

    def encode(self, values):
        return [v % self.width for v in values]


class CompressionAlgorithm:
    """Stand-in for the real identity base class."""

    name = "base"


class DictionaryAlgorithm(CompressionAlgorithm):
    name = "global_dictionary"

    def __init__(self, width: int = 8) -> None:
        self._codec = _DictionaryCodec(width)

    def compressed_size(self, values) -> int:
        return len(self._codec.encode(values))
