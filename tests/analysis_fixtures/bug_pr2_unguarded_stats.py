# repro-lint-fixture: expect=RPL005
# repro-lint-fixture: guard-all
"""The PR 2 cross-batch stats corruption, reintroduced in isolation.

``EngineStats``-style counters are bumped from executor worker threads.
Writing the same attribute both under ``with self._lock`` and bare
means concurrent batches interleave read-modify-write pairs and drop
increments. The ``_locked``-suffix helper convention (callers hold the
lock) must stay clean.
"""

import threading


class Stats:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.trials = 0
        self.cache_hits = 0

    def record_trial(self) -> None:
        with self._lock:
            self.trials += 1

    def record_hit_locked(self) -> None:
        # Clean: documented convention, callers hold the lock.
        self.cache_hits += 1

    def reset(self) -> None:
        with self._lock:
            self.cache_hits = 0

    def merge(self, other: "Stats") -> None:
        # The bug: racing bare write to a lock-guarded attribute.
        self.trials = self.trials + other.trials
