# repro-lint-fixture: identity-bases=CompressionAlgorithm
"""Negative twin of the PR 3 codec bug: a content-based ``__repr__``.

Same holding structure as ``bug_pr3_address_repr_codec.py``, but the
codec reprs its configuration, so the algorithm identity is stable
across processes and the linter stays silent.
"""


class _DictionaryCodec:
    def __init__(self, width: int) -> None:
        self.width = width

    def __repr__(self) -> str:
        return f"_DictionaryCodec(width={self.width})"

    def encode(self, values):
        return [v % self.width for v in values]


class CompressionAlgorithm:
    name = "base"


class DictionaryAlgorithm(CompressionAlgorithm):
    name = "global_dictionary"

    def __init__(self, width: int = 8) -> None:
        self._codec = _DictionaryCodec(width)
