# repro-lint-fixture: roots=run_unit
# repro-lint-fixture: entropy-exempt=ok_wallclock_exempt_module
"""The sanctioned wall-clock home: exempt module, silent linter.

The same reachable ``time.time()`` as ``bug_wallclock_reachable.py``,
but this module is declared entropy-exempt — the fixture analogue of
``repro.obs``, where span timestamps live by design. The exemption is
per *module*, not per call site: anything the tracing layer does with
clocks is fine precisely because its output never feeds an estimate.
"""

import time


def _span_timestamp(value: float) -> tuple[float, float]:
    # Sanctioned: this module is the fixture's observability layer.
    return value, time.time()


def _finalize(value: float) -> tuple[float, float]:
    return _span_timestamp(value)


def run_unit(unit: float) -> tuple[float, float]:
    """Fixture stand-in for ``repro.engine.units.run_plan_unit``."""
    return _finalize(unit)
