# repro-lint-fixture: roots=run_unit
"""Negative twin of the entropy fixture: a documented exception.

The reachable entropy point carries an inline suppression *with a
rationale*, matching how the real tree documents its None-seed
contract in ``engine.py``/``samplecf.py``. The linter must honour the
suppression and must not report it unused.
"""

import numpy as np


def _resolve_rng(seed):
    if seed is None:
        # repro-lint: ignore[RPL001] -- fixture twin of make_rng's
        # documented None-seed contract: fresh OS entropy on request,
        # never taken by plan-unit execution.
        return np.random.default_rng()
    return np.random.default_rng(seed)


def run_unit(unit: float, seed=0) -> float:
    rng = _resolve_rng(seed)
    return unit + float(rng.random())
