# repro-lint-fixture: guard-all
"""Negative twin of the stats bug: every shared write takes the lock.

Same class shape as ``bug_pr2_unguarded_stats.py``; the merge path now
locks too, so the linter must stay silent.
"""

import threading


class Stats:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.trials = 0

    def record_trial(self) -> None:
        with self._lock:
            self.trials += 1

    def merge(self, other: "Stats") -> None:
        with self._lock:
            self.trials = self.trials + other.trials
