# repro-lint-fixture: swallow-all
"""Negative twin of the swallowed-exception bug: absorbed *and* accounted.

Same read shape as ``bug_swallowed_exception.py``; every overbroad
handler now either bumps a counter, routes through a degradation call,
or carries a suppression with a rationale — the linter must stay
silent.
"""


class Store:
    def __init__(self) -> None:
        self.degraded_reads = 0

    def _quarantine(self, path: str) -> None:
        self.degraded_reads += 1

    def read(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except Exception:
            # Clean: the miss is recorded before being absorbed.
            self.degraded_reads += 1
            return None

    def read_quarantining(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except Exception:
            # Clean: degradation routed through an accounting call.
            self._quarantine(path)
            return None

    def probe(self, path: str) -> bool:
        try:
            with open(path, "rb"):
                return True
        # repro-lint: ignore[RPL006] -- best-effort existence probe on
        # the diagnostics path; a failure here is equivalent to a miss
        # and deliberately unrecorded.
        except Exception:
            return False
