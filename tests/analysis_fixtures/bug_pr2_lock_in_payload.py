# repro-lint-fixture: expect=RPL003,RPL003
# repro-lint-fixture: payload-roots=WorkUnit
"""The PR 2 unpicklable-payload bug, reintroduced in isolation.

Plan units and materialized samples cross pickle boundaries on their
way to process-pool and remote workers. A ``threading.Lock`` dataclass
field (or an open file handle assigned in ``__init__``) kills that with
``TypeError: cannot pickle '_thread.lock' object`` — at dispatch time,
far from the class definition.
"""

import threading
from dataclasses import dataclass, field


@dataclass
class ShardState:
    """Lock as a dataclass field — the exact PR 2 shape."""

    shard: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class WorkUnit:
    """Payload root whose ``__init__`` grabs an OS resource."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
