# repro-lint-fixture: expect=RPL001
# repro-lint-fixture: roots=run_unit
"""Nondeterministic entropy on the estimate path, in isolation.

Everything ``run_unit`` can reach must replay bit-identically from the
unit's resolved seed; a ``random.random()`` two calls deep breaks the
serial/thread/process/remote equivalence the engine guarantees. The
same entropy in a function the root *cannot* reach (a reporting helper)
is out of contract and must stay clean.
"""

import random
import time


def _draw_jitter() -> float:
    # The bug: seedless stdlib entropy inside the reachable helper.
    return random.random()


def _perturb(value: float) -> float:
    return value + _draw_jitter()


def run_unit(unit: float) -> float:
    """Fixture stand-in for ``repro.engine.units.run_plan_unit``."""
    return _perturb(unit)


def wall_clock_label() -> str:
    """Unreachable from the root: entropy here is not a finding."""
    return f"run at {time.time():.0f}"
