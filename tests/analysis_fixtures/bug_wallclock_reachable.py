# repro-lint-fixture: expect=RPL001
# repro-lint-fixture: roots=run_unit
"""Wall-clock on the estimate path, outside the observability layer.

``repro.obs`` is the one sanctioned home for clock reads (span
timestamps never feed an estimate); this fixture reintroduces the
pattern the exemption must NOT cover — a ``time.time()`` call in an
ordinary unit-reachable module. The ``entropy-exempt`` twin
(``ok_wallclock_exempt_module.py``) shows the same code going silent
once its module is declared part of the observability tree.
"""

import time


def _stamp_result(value: float) -> tuple[float, float]:
    # The bug: a wall-clock read two calls deep on the unit path. Even
    # when the timestamp is "just metadata", it lands in a payload the
    # replay comparator hashes — estimates stop being bit-identical.
    return value, time.time()


def _finalize(value: float) -> tuple[float, float]:
    return _stamp_result(value)


def run_unit(unit: float) -> tuple[float, float]:
    """Fixture stand-in for ``repro.engine.units.run_plan_unit``."""
    return _finalize(unit)
