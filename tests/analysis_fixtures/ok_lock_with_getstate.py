# repro-lint-fixture: payload-roots=GuardedHandle
"""Negative twin of the PR 2 payload bug: a pickle protocol pair.

Holding a lock is fine when ``__getstate__`` drops it and
``__setstate__`` rebuilds it — the shape ``MaterializedSample`` uses in
the real tree. The linter must treat the pair as an exemption.
"""

import threading
from dataclasses import dataclass, field


@dataclass
class GuardedHandle:
    path: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.lock = threading.Lock()
