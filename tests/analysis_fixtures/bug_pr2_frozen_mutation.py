# repro-lint-fixture: expect=RPL004:27
"""The PR 2 frozen-estimate mutation bug, reintroduced in isolation.

Frozen estimates are shared by the in-memory cache, batch results, and
the persistent store; ``object.__setattr__`` after construction
silently corrupts every holder. Inside ``__post_init__`` the same call
is the documented dataclass idiom and must stay clean.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Estimate:
    value: float
    sample_rows: int = 0

    def __post_init__(self) -> None:
        # Allowed: construction-time normalisation.
        object.__setattr__(self, "value", float(self.value))


def rescale(estimate: Estimate, factor: float) -> Estimate:
    """The bug: "fixing up" a cached estimate in place."""
    # Mutates the instance the cache (and every other holder) shares,
    # instead of building a new one with dataclasses.replace().
    object.__setattr__(estimate, "value", estimate.value * factor)
    return estimate
