# repro-lint-fixture: expect=RPL000,RPL000,RPL000
"""The meta-rule: suppressions are themselves under contract.

Three violations, one per RPL000 shape: a waiver with no rationale, a
waiver naming an unknown rule code, and a well-formed waiver that no
longer suppresses anything (the ``warn_unused_ignores`` analog — stale
exceptions rot into folklore unless the gate evicts them).
"""

import random


def sample_without_rationale() -> float:
    # repro-lint: ignore[RPL001]
    return random.random()


def sample_unknown_code() -> float:
    # repro-lint: ignore[RPL999] -- no such rule is registered
    return random.random()


def plain_arithmetic() -> int:
    # repro-lint: ignore[RPL004] -- nothing here ever fired this rule
    return 2 + 2
