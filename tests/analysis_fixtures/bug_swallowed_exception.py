# repro-lint-fixture: expect=RPL006:25
# repro-lint-fixture: swallow-all
"""A silently swallowed store failure, reintroduced in isolation.

The failure-semantics contract for the store/engine layers is
*absorbed and accounted*: a fault may be degraded around, but only
through a path that re-raises, records a counter, or routes through a
quarantine/degradation call. An ``except Exception: pass`` turns an
injected (or real) fault into an invisible wrong-path — the estimate
silently comes from nowhere and no counter moves.
"""


class Store:
    def __init__(self) -> None:
        self.misses = 0

    def read(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            # Clean: a narrow type is an explicit decision, not a net.
            return None
        except Exception:
            # The bug: every other failure class — permission, I/O,
            # corruption mid-read — vanishes without a trace.
            return None
